//! Budget-bounded surrogate machinery: the subset-of-data **active set** and
//! the TuRBO-style **trust region** that together cap per-round surrogate
//! cost for long-lived sessions (ROADMAP open item 2).
//!
//! The exact GP is O(n³) per fit and the incremental [`GpCache`] only defers
//! that cost — at thousands of trials per session every round still pays it.
//! With [`BacoOptions::surrogate_budget`] set to `b`, once the feasible
//! history exceeds `b` points the tuner fits on an [`ActiveSet`] of exactly
//! `b` points instead, chosen deterministically off the journaled RNG
//! stream:
//!
//! 1. **incumbent block** — the `b/4` best points by (scalarized, transformed)
//!    objective value, ties broken by history order, so the model always
//!    resolves the region EI cares about;
//! 2. **recency block** — the `b/2` most recent points not already chosen,
//!    so fresh observations are never thrown away before the model sees them;
//! 3. **space-filling remainder** — greedy farthest-point selection over an
//!    RNG-drawn candidate pool (preferring points inside the trust region),
//!    so the model keeps global support and EI's exploration term stays
//!    calibrated.
//!
//! The [`TrustRegion`] is a deterministic *fold over the trial history* —
//! center at the incumbent, per-dimension radii driven by success/failure
//! counters with expand/shrink/restart rules — recomputed from scratch each
//! round rather than stored, exactly like [`GpCache`] is never serialized:
//! a resumed run replays the same history and lands in the same region, so
//! crash-safe resume ([`crate::journal`]) stays bitwise without new record
//! types. A region whose radius collapses below one discrete step of a
//! parameter restarts (full-size radii) instead of pinning search onto a
//! handful of already-seen configurations.
//!
//! Neither mechanism runs while the history fits the budget, so
//! `surrogate_budget ≥ n` is bit-identical to the exact path.
//!
//! [`GpCache`]: super::GpCache
//! [`BacoOptions::surrogate_budget`]: crate::tuner::BacoOptions::surrogate_budget

use super::features::ModelInput;
use crate::space::{Configuration, ParamKind, Parameter, PermMetric, Scale, SearchSpace};
use rand::rngs::StdRng;
use rand::Rng;

/// Initial (and restart) per-dimension trust-region radius, in normalized
/// feature units (per-dimension distances live in `[0, 1]`).
const INIT_RADIUS: f64 = 0.8;
/// Radii never expand beyond the full normalized range.
const MAX_RADIUS: f64 = 1.0;
/// Consecutive incumbent improvements before the region expands.
const SUCC_TOL: usize = 3;
/// Consecutive non-improvements before the region shrinks.
const FAIL_TOL: usize = 8;
const EXPAND: f64 = 2.0;
const SHRINK: f64 = 0.5;
/// Radius floor for categorical/permutation dimensions: a radius below 1
/// legitimately pins the dimension to the center's value (their distances
/// are 0-or-∼1), so only a collapse far beyond that counts as degenerate.
const CAT_FLOOR: f64 = INIT_RADIUS / 64.0;
/// Radius floor for real dimensions (continuous: no discrete step).
const REAL_FLOOR: f64 = 1e-6;
/// Oversampling factor for the space-filling candidate pool.
const POOL_FACTOR: usize = 4;

/// The training subset one budgeted round fits on: at most `budget` history
/// indices, ascending. See the [module docs](self) for the selection rules.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    indices: Vec<usize>,
}

impl ActiveSet {
    /// Selects the active set for one round. `values` holds the (scalarized,
    /// transformed) objective of every feasible point in history order and
    /// `cfgs` the matching configurations; `budget < values.len()` (callers
    /// skip selection entirely otherwise). All RNG draws come from the
    /// journaled stream and their count is a deterministic function of the
    /// replayed history, so resumed runs reproduce the selection bitwise.
    #[allow(clippy::too_many_arguments)]
    pub fn select(
        rng: &mut StdRng,
        space: &SearchSpace,
        cfgs: &[&Configuration],
        values: &[f64],
        budget: usize,
        metric: PermMetric,
        transforms: bool,
        region: Option<&TrustRegion>,
    ) -> ActiveSet {
        let n = values.len();
        debug_assert_eq!(cfgs.len(), n);
        debug_assert!(budget < n, "select() called although history fits the budget");
        let k_best = (budget / 4).max(1);
        let k_recent = (budget / 2).max(1);
        let mut chosen: Vec<usize> = Vec::with_capacity(budget);
        let mut in_set = vec![false; n];

        // 1. Incumbent block: best-k by value, ties by history order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
        for &i in order.iter().take(k_best.min(budget)) {
            chosen.push(i);
            in_set[i] = true;
        }

        // 2. Recency block: newest points not already chosen.
        let mut added = 0;
        for i in (0..n).rev() {
            if added == k_recent || chosen.len() == budget {
                break;
            }
            if !in_set[i] {
                chosen.push(i);
                in_set[i] = true;
                added += 1;
            }
        }

        // 3. Space-filling remainder: greedy farthest-point over an RNG
        //    pool, preferring candidates inside the trust region.
        let needed = budget - chosen.len();
        if needed > 0 {
            let mut pool: Vec<usize> = (0..POOL_FACTOR * needed)
                .map(|_| rng.gen_range(0..n))
                .collect();
            pool.sort_unstable();
            pool.dedup();
            pool.retain(|&i| !in_set[i]);

            let feat = |i: usize| ModelInput::from_config(space, cfgs[i], transforms);
            let pool_feats: Vec<ModelInput> = pool.iter().map(|&i| feat(i)).collect();
            let chosen_feats: Vec<ModelInput> = chosen.iter().map(|&i| feat(i)).collect();
            let in_region: Vec<bool> = pool_feats
                .iter()
                .map(|f| region.is_none_or(|r| r.contains_input(f)))
                .collect();
            let d = space.len();
            let dist2 = |a: &ModelInput, b: &ModelInput| {
                (0..d).map(|k| a.dim_dist2(b, k, metric)).sum::<f64>()
            };
            // Min distance from each pool candidate to the chosen set.
            let mut min_d: Vec<f64> = pool_feats
                .iter()
                .map(|f| {
                    chosen_feats
                        .iter()
                        .map(|c| dist2(f, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let mut used = vec![false; pool.len()];
            for _ in 0..needed {
                let mut best: Option<usize> = None;
                // In-region candidates first; fall back outside the region.
                for want_in_region in [true, false] {
                    for p in 0..pool.len() {
                        if used[p] || in_region[p] != want_in_region {
                            continue;
                        }
                        let better = match best {
                            None => true,
                            Some(q) => min_d[p] > min_d[q],
                        };
                        if better {
                            best = Some(p);
                        }
                    }
                    if best.is_some() {
                        break;
                    }
                }
                let Some(p) = best else { break };
                used[p] = true;
                chosen.push(pool[p]);
                in_set[pool[p]] = true;
                for q in 0..pool.len() {
                    if !used[q] {
                        min_d[q] = min_d[q].min(dist2(&pool_feats[q], &pool_feats[p]));
                    }
                }
            }
        }

        // Shortfall (tiny pool after dedup): newest unchosen points.
        for i in (0..n).rev() {
            if chosen.len() == budget {
                break;
            }
            if !in_set[i] {
                chosen.push(i);
                in_set[i] = true;
            }
        }

        chosen.sort_unstable();
        ActiveSet { indices: chosen }
    }

    /// The selected history indices, ascending.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of selected points.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set is empty (never true for `select`'s output).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Gathers the selected entries of a history-ordered slice.
    pub fn gather<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        self.indices.iter().map(|&i| xs[i].clone()).collect()
    }
}

/// A TuRBO-style local trust region: a per-dimension box (in normalized
/// feature distance) around the incumbent. Recomputed each budgeted round by
/// [`TrustRegion::from_scalars`] as a deterministic fold over the trial
/// history; see the [module docs](self) for the state-machine rules and the
/// determinism story.
#[derive(Debug, Clone)]
pub struct TrustRegion {
    center: ModelInput,
    radii: Vec<f64>,
    metric: PermMetric,
    restarts: usize,
}

impl TrustRegion {
    /// Folds the trial history (in order) into the current region. `scalars`
    /// holds one entry per trial: the (scalarized, transformed) objective
    /// for feasible trials, `None` for infeasible ones (which count as
    /// failures). Returns `None` when no feasible trial exists.
    pub fn from_scalars(
        space: &SearchSpace,
        cfgs: &[&Configuration],
        scalars: &[Option<f64>],
        metric: PermMetric,
        transforms: bool,
    ) -> Option<TrustRegion> {
        debug_assert_eq!(cfgs.len(), scalars.len());
        let floors: Vec<f64> = space
            .params()
            .iter()
            .map(|p| dim_floor(p, transforms))
            .collect();
        let d = space.len();
        let mut radii = vec![INIT_RADIUS; d];
        let mut best = f64::INFINITY;
        let mut center: Option<ModelInput> = None;
        let mut succ = 0usize;
        let mut fail = 0usize;
        let mut restarts = 0usize;
        for (cfg, s) in cfgs.iter().zip(scalars) {
            let improved = s.is_some_and(|s| s < best - 1e-12 * best.abs().clamp(1.0, 1e12));
            if improved {
                best = s.expect("improved implies Some");
                center = Some(ModelInput::from_config(space, cfg, transforms));
                succ += 1;
                fail = 0;
                if succ >= SUCC_TOL {
                    succ = 0;
                    for r in &mut radii {
                        *r = (*r * EXPAND).min(MAX_RADIUS);
                    }
                }
            } else {
                fail += 1;
                succ = 0;
                if fail >= FAIL_TOL {
                    fail = 0;
                    for r in &mut radii {
                        *r *= SHRINK;
                    }
                    // Degenerate-region guard: a radius below one discrete
                    // step would make the region propose the same handful of
                    // configurations forever — restart at full size instead.
                    if radii.iter().zip(&floors).any(|(r, f)| r < f) {
                        radii.fill(INIT_RADIUS);
                        restarts += 1;
                    }
                }
            }
        }
        Some(TrustRegion {
            center: center?,
            radii,
            metric,
            restarts,
        })
    }

    /// Whether a featurized point lies inside the region (every dimension
    /// within its radius).
    pub(crate) fn contains_input(&self, x: &ModelInput) -> bool {
        self.radii
            .iter()
            .enumerate()
            .all(|(k, &r)| x.dim_dist2(&self.center, k, self.metric) <= r * r)
    }

    /// Whether `cfg` lies inside the region.
    pub fn contains(&self, space: &SearchSpace, cfg: &Configuration, transforms: bool) -> bool {
        self.contains_input(&ModelInput::from_config(space, cfg, transforms))
    }

    /// Current per-dimension radii (normalized feature units).
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// How many times the degenerate-region guard restarted the region over
    /// the folded history.
    pub fn restarts(&self) -> usize {
        self.restarts
    }
}

/// The smallest meaningful radius of one dimension: one discrete step for
/// numeric-discrete parameters (below which the region contains only the
/// center's value on that axis), a small epsilon for continuous ones, and a
/// deep-collapse floor for categorical/permutation dimensions.
fn dim_floor(p: &Parameter, transforms: bool) -> f64 {
    let scale = if transforms { p.scale() } else { Scale::Linear };
    match p.kind() {
        ParamKind::Real { .. } => REAL_FLOOR,
        ParamKind::Integer { .. } => {
            let card = p.domain_size().expect("integer has a domain size");
            if card <= 1 {
                0.0
            } else {
                // The minimum adjacent gap: uniform when linear, at the top
                // end when log-scaled (log compresses large values).
                p.normalized_at_with(card - 1, scale) - p.normalized_at_with(card - 2, scale)
            }
        }
        ParamKind::Ordinal { values } => {
            if values.len() <= 1 {
                0.0
            } else {
                (1..values.len())
                    .map(|i| {
                        (p.normalized_at_with(i as u64, scale)
                            - p.normalized_at_with(i as u64 - 1, scale))
                        .abs()
                    })
                    .fold(f64::INFINITY, f64::min)
            }
        }
        ParamKind::Categorical { .. } | ParamKind::Permutation { .. } => CAT_FLOOR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamValue;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .integer("x", 0, 30)
            .integer("y", 0, 30)
            .build()
            .unwrap()
    }

    fn cfg(s: &SearchSpace, x: i64, y: i64) -> Configuration {
        s.configuration(&[("x", ParamValue::Int(x)), ("y", ParamValue::Int(y))])
            .unwrap()
    }

    fn history(s: &SearchSpace, n: usize) -> (Vec<Configuration>, Vec<f64>) {
        let cfgs: Vec<Configuration> = (0..n)
            .map(|i| cfg(s, (i % 31) as i64, ((i * 7) % 31) as i64))
            .collect();
        let values: Vec<f64> = (0..n)
            .map(|i| ((i as f64) * 0.37).sin().abs() * 10.0 + 1.0)
            .collect();
        (cfgs, values)
    }

    #[test]
    fn active_set_is_deterministic_capped_and_sorted() {
        let s = space();
        let (cfgs, values) = history(&s, 200);
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let select = || {
            let mut rng = StdRng::seed_from_u64(7);
            ActiveSet::select(
                &mut rng,
                &s,
                &refs,
                &values,
                32,
                PermMetric::Spearman,
                true,
                None,
            )
        };
        let a = select();
        let b = select();
        assert_eq!(a.indices(), b.indices());
        assert_eq!(a.len(), 32);
        assert!(a.indices().windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        assert!(a.indices().iter().all(|&i| i < 200));
    }

    #[test]
    fn active_set_anchors_incumbent_and_recent() {
        let s = space();
        let (cfgs, mut values) = history(&s, 200);
        values[17] = 0.001; // global best
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let set = ActiveSet::select(
            &mut rng,
            &s,
            &refs,
            &values,
            32,
            PermMetric::Spearman,
            true,
            None,
        );
        assert!(set.indices().contains(&17), "incumbent must be in the set");
        // The b/2 most recent points are always kept.
        for i in 184..200 {
            assert!(set.indices().contains(&i), "recent point {i} missing");
        }
    }

    #[test]
    fn active_set_gathers_matching_slices() {
        let s = space();
        let (cfgs, values) = history(&s, 50);
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let mut rng = StdRng::seed_from_u64(3);
        let set = ActiveSet::select(
            &mut rng,
            &s,
            &refs,
            &values,
            10,
            PermMetric::Spearman,
            true,
            None,
        );
        let sub = set.gather(&values);
        assert_eq!(sub.len(), 10);
        for (j, &i) in set.indices().iter().enumerate() {
            assert_eq!(sub[j], values[i]);
        }
    }

    #[test]
    fn trust_region_expands_on_successes_and_shrinks_on_failures() {
        let s = space();
        // Strictly improving: expands every SUCC_TOL trials.
        let cfgs: Vec<Configuration> = (0..6).map(|i| cfg(&s, i, i)).collect();
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let improving: Vec<Option<f64>> = (0..6).map(|i| Some(100.0 - i as f64)).collect();
        let tr =
            TrustRegion::from_scalars(&s, &refs, &improving, PermMetric::Spearman, true).unwrap();
        assert!(tr.radii().iter().all(|&r| r == MAX_RADIUS), "{:?}", tr.radii());

        // One improvement then a failure streak: shrinks.
        let mut scalars: Vec<Option<f64>> = vec![Some(1.0)];
        scalars.extend(std::iter::repeat_n(Some(50.0), FAIL_TOL));
        let cfgs: Vec<Configuration> = (0..scalars.len()).map(|i| cfg(&s, i as i64, 0)).collect();
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let tr = TrustRegion::from_scalars(&s, &refs, &scalars, PermMetric::Spearman, true).unwrap();
        assert!(
            tr.radii().iter().all(|&r| r == INIT_RADIUS * SHRINK),
            "{:?}",
            tr.radii()
        );
        assert_eq!(tr.restarts(), 0);
    }

    #[test]
    fn degenerate_region_restarts_instead_of_collapsing() {
        let s = space();
        // One improvement, then failures forever: radii would halve
        // indefinitely; the guard must restart once they pass one discrete
        // step (1/30 normalized for integer(0, 30)).
        let n = 1 + FAIL_TOL * 12;
        let mut scalars: Vec<Option<f64>> = vec![Some(1.0)];
        scalars.extend(std::iter::repeat_n(None, n - 1));
        let cfgs: Vec<Configuration> = (0..n).map(|i| cfg(&s, (i % 31) as i64, 0)).collect();
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let tr = TrustRegion::from_scalars(&s, &refs, &scalars, PermMetric::Spearman, true).unwrap();
        assert!(tr.restarts() >= 1, "guard never fired");
        let step = 1.0 / 30.0;
        assert!(
            tr.radii().iter().all(|&r| r >= step),
            "collapsed below one step: {:?}",
            tr.radii()
        );
    }

    #[test]
    fn infeasible_history_has_no_region() {
        let s = space();
        let cfgs: Vec<Configuration> = (0..4).map(|i| cfg(&s, i, 0)).collect();
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let scalars = vec![None; 4];
        assert!(
            TrustRegion::from_scalars(&s, &refs, &scalars, PermMetric::Spearman, true).is_none()
        );
    }

    #[test]
    fn contains_is_a_per_dimension_box_around_the_incumbent() {
        let s = space();
        // Improvements keep the region at the incumbent; radii stay INIT
        // (two improvements < SUCC_TOL).
        let cfgs = [cfg(&s, 15, 15), cfg(&s, 16, 15)];
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let scalars = vec![Some(2.0), Some(1.0)];
        let tr = TrustRegion::from_scalars(&s, &refs, &scalars, PermMetric::Spearman, true).unwrap();
        // Center is (16, 15); radius 0.8 covers |Δ| ≤ 24 steps of 30.
        assert!(tr.contains(&s, &cfg(&s, 16, 15), true));
        assert!(tr.contains(&s, &cfg(&s, 0, 15), true)); // 16 steps away
        // After a shrink the box tightens to |Δ| ≤ 12 steps.
        let mut scalars: Vec<Option<f64>> = vec![Some(1.0)];
        scalars.extend(std::iter::repeat_n(None, FAIL_TOL));
        let cfgs: Vec<Configuration> = (0..scalars.len()).map(|_| cfg(&s, 15, 15)).collect();
        let refs: Vec<&Configuration> = cfgs.iter().collect();
        let tr = TrustRegion::from_scalars(&s, &refs, &scalars, PermMetric::Spearman, true).unwrap();
        // Radii now 0.4: |Δ| ≤ 12 steps.
        assert!(tr.contains(&s, &cfg(&s, 15 + 12, 15), true));
        assert!(!tr.contains(&s, &cfg(&s, 15 + 13, 15), true));
    }
}
