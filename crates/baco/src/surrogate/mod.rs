//! Predictive models: the Gaussian-process value surrogate (Sec. 3.2) and the
//! random-forest models used both as an alternative surrogate and as the
//! hidden-constraint feasibility classifier (Sec. 4.2).

mod features;
pub mod gp;
pub mod rf;

pub use features::ModelInput;
pub use gp::{GaussianProcess, GpOptions};
pub use rf::{RandomForestClassifier, RandomForestRegressor, RfOptions};

use crate::space::{Configuration, SearchSpace};

/// A fitted value model: posterior mean and variance at a configuration.
///
/// Implemented by [`GaussianProcess`] and [`RandomForestRegressor`] so the
/// tuner can swap surrogates (the paper's Fig. 8 comparison).
pub trait ValueModel: std::fmt::Debug {
    /// Posterior mean and (latent, noise-free) variance at `cfg`.
    fn predict(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64);
}

impl ValueModel for GaussianProcess {
    fn predict(&self, _space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        self.predict(cfg)
    }
}

impl ValueModel for RandomForestRegressor {
    fn predict(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        self.predict_config(space, cfg)
    }
}
