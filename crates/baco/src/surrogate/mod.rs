//! Predictive models: the Gaussian-process value surrogate (Sec. 3.2) and the
//! random-forest models used both as an alternative surrogate and as the
//! hidden-constraint feasibility classifier (Sec. 4.2).

pub mod cache;
mod features;
pub mod gp;
pub mod rf;

pub use cache::GpCache;
pub use features::ModelInput;
pub use gp::{GaussianProcess, GpOptions, PredictScratch, WarmStartOptions};
pub use rf::{RandomForestClassifier, RandomForestRegressor, RfOptions};

use crate::space::{Configuration, SearchSpace};

/// A fitted value model: posterior mean and variance at a configuration.
///
/// Implemented by [`GaussianProcess`] and [`RandomForestRegressor`] so the
/// tuner can swap surrogates (the paper's Fig. 8 comparison).
pub trait ValueModel: std::fmt::Debug {
    /// Posterior mean and (latent, noise-free) variance at `cfg`.
    fn predict(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64);

    /// Posterior mean and variance for a whole candidate batch.
    ///
    /// The default maps [`ValueModel::predict`]; models with a faster bulk
    /// path (the GP's blocked triangular solve) override it. Acquisition
    /// scoring always goes through this entry point, so a model only has to
    /// override one method to accelerate the whole search.
    fn predict_batch(&self, space: &SearchSpace, cfgs: &[Configuration]) -> Vec<(f64, f64)> {
        cfgs.iter().map(|c| self.predict(space, c)).collect()
    }
}

impl ValueModel for GaussianProcess {
    fn predict(&self, _space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        self.predict(cfg)
    }

    fn predict_batch(&self, _space: &SearchSpace, cfgs: &[Configuration]) -> Vec<(f64, f64)> {
        let inputs = self.featurize(cfgs);
        GaussianProcess::predict_batch(self, &inputs)
    }
}

impl ValueModel for RandomForestRegressor {
    fn predict(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        self.predict_config(space, cfg)
    }
}
