//! Predictive models: the Gaussian-process value surrogate (Sec. 3.2) and the
//! random-forest models used both as an alternative surrogate and as the
//! hidden-constraint feasibility classifier (Sec. 4.2).
//!
//! The GP is the tuner's hot path; see [`gp`] for the batched-posterior,
//! incremental-refit and fantasy-conditioning machinery, and [`cache`] for
//! the cross-iteration state that makes refits incremental.
//!
//! ```
//! use baco::space::{ParamValue, SearchSpace};
//! use baco::surrogate::{GaussianProcess, GpOptions};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder().integer("x", 0, 20).build()?;
//! let cfg = |x: i64| space.configuration(&[("x", ParamValue::Int(x))]).unwrap();
//! let configs: Vec<_> = (0..=20).step_by(4).map(cfg).collect();
//! let y: Vec<f64> = configs.iter().map(|c| c.value("x").as_f64() / 10.0).collect();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let gp = GaussianProcess::fit(&space, &configs, &y, &GpOptions::default(), &mut rng)?;
//! let (mean, var) = gp.predict(&cfg(10));
//! assert!((mean - 1.0).abs() < 0.5 && var >= 0.0);
//! # Ok::<(), baco::Error>(())
//! ```

pub mod budget;
pub mod cache;
mod features;
pub mod gp;
pub mod mean;
pub mod rf;

pub use budget::{ActiveSet, TrustRegion};
pub use cache::GpCache;
pub use features::ModelInput;
pub use gp::{GaussianProcess, GpOptions, PredictScratch, WarmStartOptions};
pub use mean::{MeanFn, ZeroMean, ZERO_MEAN_DIGEST};
pub use rf::{RandomForestClassifier, RandomForestRegressor, RfOptions};

use crate::space::{Configuration, SearchSpace};

/// A fitted value model: posterior mean and variance at a configuration.
///
/// Implemented by [`GaussianProcess`] and [`RandomForestRegressor`] so the
/// tuner can swap surrogates (the paper's Fig. 8 comparison).
pub trait ValueModel: std::fmt::Debug {
    /// Posterior mean and (latent, noise-free) variance at `cfg`.
    fn predict(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64);

    /// Posterior mean and variance for a whole candidate batch.
    ///
    /// The default maps [`ValueModel::predict`]; models with a faster bulk
    /// path (the GP's blocked triangular solve) override it. Acquisition
    /// scoring always goes through this entry point, so a model only has to
    /// override one method to accelerate the whole search.
    fn predict_batch(&self, space: &SearchSpace, cfgs: &[Configuration]) -> Vec<(f64, f64)> {
        cfgs.iter().map(|c| self.predict(space, c)).collect()
    }
}

impl ValueModel for GaussianProcess {
    fn predict(&self, _space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        self.predict(cfg)
    }

    fn predict_batch(&self, _space: &SearchSpace, cfgs: &[Configuration]) -> Vec<(f64, f64)> {
        self.predict_batch_configs(cfgs)
    }
}

impl ValueModel for RandomForestRegressor {
    fn predict(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        self.predict_config(space, cfg)
    }
}
