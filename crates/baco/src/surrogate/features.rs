use crate::space::{ParamKind, PermMetric, Scale};
use crate::space::{Configuration, SearchSpace};

/// One parameter's model-facing representation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Feature {
    /// Normalized numeric position in `[0,1]` (log-transformed when the
    /// parameter declares [`Scale::Log`] and transforms are enabled).
    Num(f64),
    /// Category index (Hamming distance).
    Cat(u32),
    /// Decoded permutation (semimetric distance).
    Perm(Vec<u8>),
}

/// A configuration prepared for model consumption: every parameter mapped to
/// its distance-ready representation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInput {
    pub(crate) feats: Vec<Feature>,
}

impl ModelInput {
    /// Builds the model representation of `cfg`.
    ///
    /// With `use_transforms == false` (the `BaCO--` ablation of Fig. 8/9),
    /// log-scaled parameters are normalized linearly instead.
    pub fn from_config(space: &SearchSpace, cfg: &Configuration, use_transforms: bool) -> Self {
        let feats = space
            .params()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let scale = if use_transforms { p.scale() } else { Scale::Linear };
                match p.kind() {
                    ParamKind::Real { .. } => {
                        Feature::Num(p.normalized_real_with(cfg.value_at(i).as_f64(), scale))
                    }
                    ParamKind::Integer { .. } | ParamKind::Ordinal { .. } => {
                        Feature::Num(p.normalized_at_with(cfg.cval(i).idx(), scale))
                    }
                    ParamKind::Categorical { .. } => Feature::Cat(cfg.cval(i).idx() as u32),
                    ParamKind::Permutation { len } => {
                        Feature::Perm(crate::space::perm::unrank(cfg.cval(i).idx(), *len))
                    }
                }
            })
            .collect();
        ModelInput { feats }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.feats.len()
    }

    /// Whether there are no parameters.
    pub fn is_empty(&self) -> bool {
        self.feats.is_empty()
    }

    /// Squared per-dimension distance between two inputs (before lengthscale
    /// weighting). Permutation distances use `metric`, normalized to `[0,1]`.
    ///
    /// # Panics
    /// Panics if the inputs come from different spaces.
    pub(crate) fn dim_dist2(&self, other: &ModelInput, dim: usize, metric: PermMetric) -> f64 {
        match (&self.feats[dim], &other.feats[dim]) {
            (Feature::Num(a), Feature::Num(b)) => (a - b) * (a - b),
            (Feature::Cat(a), Feature::Cat(b)) => {
                if a == b {
                    0.0
                } else {
                    1.0
                }
            }
            (Feature::Perm(a), Feature::Perm(b)) => {
                let d = crate::space::perm::distance(metric, a, b);
                d * d
            }
            (a, b) => panic!("mismatched features at dim {dim}: {a:?} vs {b:?}"),
        }
    }

    /// Dimension-major column of one feature across a set of inputs, for the
    /// batched cross-kernel (see [`accumulate_scaled_dist2`]).
    pub(crate) fn dim_view(inputs: &[ModelInput], dim: usize) -> DimView {
        match inputs.first().map(|x| &x.feats[dim]) {
            None => DimView::Num(Vec::new()),
            Some(Feature::Num(_)) => DimView::Num(
                inputs
                    .iter()
                    .map(|x| match &x.feats[dim] {
                        Feature::Num(v) => *v,
                        f => panic!("dim_view: mixed features ({f:?})"),
                    })
                    .collect(),
            ),
            Some(Feature::Cat(_)) => DimView::Cat(
                inputs
                    .iter()
                    .map(|x| match &x.feats[dim] {
                        Feature::Cat(c) => *c,
                        f => panic!("dim_view: mixed features ({f:?})"),
                    })
                    .collect(),
            ),
            Some(Feature::Perm(p0)) => {
                let len = p0.len();
                let mut raw = Vec::with_capacity(inputs.len() * len);
                let mut pos = vec![0i64; inputs.len() * len];
                for (t, x) in inputs.iter().enumerate() {
                    let Feature::Perm(p) = &x.feats[dim] else {
                        panic!("dim_view: mixed features");
                    };
                    raw.extend_from_slice(p);
                    for (i, &e) in p.iter().enumerate() {
                        pos[t * len + e as usize] = i as i64;
                    }
                }
                DimView::Perm { len, raw, pos }
            }
        }
    }

    /// Flattened numeric feature vector for tree-based models: numeric value,
    /// category index, and one normalized position per permutation element.
    pub fn flat_features(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.feats.len());
        for f in &self.feats {
            match f {
                Feature::Num(v) => out.push(*v),
                Feature::Cat(c) => out.push(*c as f64),
                Feature::Perm(p) => {
                    let m = p.len().max(1) as f64;
                    let mut pos = vec![0.0; p.len()];
                    for (i, &e) in p.iter().enumerate() {
                        pos[e as usize] = i as f64 / m;
                    }
                    out.extend(pos);
                }
            }
        }
        out
    }
}

/// One feature dimension, laid out column-major across a set of inputs.
///
/// [`ModelInput::dim_view`] builds these so the batched GP kernel can process
/// one dimension at a time over contiguous arrays — no per-pair enum
/// dispatch, and permutation position tables are computed once per input
/// instead of once per *pair* (the scalar path's hidden allocation).
#[derive(Debug, Clone)]
pub(crate) enum DimView {
    /// Normalized numeric values.
    Num(Vec<f64>),
    /// Category indices.
    Cat(Vec<u32>),
    /// Permutations: raw element sequences and element→position tables,
    /// both flattened with stride `len`.
    Perm {
        len: usize,
        raw: Vec<u8>,
        pos: Vec<i64>,
    },
}

/// Adds `dist²(train_i, cand_j) / ls2` to `acc[i·m + j]` for every pair, with
/// arithmetic ordered exactly like [`ModelInput::dim_dist2`] — accumulating
/// every dimension in index order over the same `acc` therefore reproduces
/// the scalar path's weighted distance bit for bit.
///
/// # Panics
/// Panics if the views disagree in kind or `acc` is not `n·m` long.
pub(crate) fn accumulate_scaled_dist2(
    train: &DimView,
    cand: &DimView,
    metric: PermMetric,
    ls2: f64,
    acc: &mut [f64],
) {
    match (train, cand) {
        (DimView::Num(t), DimView::Num(c)) => {
            let m = c.len();
            assert_eq!(acc.len(), t.len() * m);
            for (ti, row) in t.iter().zip(acc.chunks_exact_mut(m)) {
                for (a, cj) in row.iter_mut().zip(c) {
                    let d = cj - ti;
                    *a += d * d / ls2;
                }
            }
        }
        (DimView::Cat(t), DimView::Cat(c)) => {
            let m = c.len();
            assert_eq!(acc.len(), t.len() * m);
            for (ti, row) in t.iter().zip(acc.chunks_exact_mut(m)) {
                for (a, cj) in row.iter_mut().zip(c) {
                    if cj != ti {
                        *a += 1.0 / ls2;
                    }
                }
            }
        }
        (
            DimView::Perm {
                len,
                raw: traw,
                pos: tpos,
            },
            DimView::Perm {
                len: clen,
                raw: craw,
                pos: cpos,
            },
        ) => {
            assert_eq!(len, clen, "accumulate_scaled_dist2: length mismatch");
            let len = *len;
            let n = tpos.len() / len.max(1);
            let m = cpos.len() / len.max(1);
            assert_eq!(acc.len(), n * m);
            let maxd = crate::space::perm::max_distance(metric, len);
            for i in 0..n {
                let ti_pos = &tpos[i * len..(i + 1) * len];
                let ti_raw = &traw[i * len..(i + 1) * len];
                let row = &mut acc[i * m..(i + 1) * m];
                for j in 0..m {
                    let cj_pos = &cpos[j * len..(j + 1) * len];
                    let cj_raw = &craw[j * len..(j + 1) * len];
                    // Candidate plays `a`, training point plays `b`, exactly
                    // as in `ModelInput::dim_dist2(self=candidate, other)`.
                    let raw_d: f64 = match metric {
                        PermMetric::Spearman => (0..len)
                            .map(|e| {
                                let d = cj_pos[e] - ti_pos[e];
                                (d * d) as f64
                            })
                            .sum(),
                        PermMetric::Kendall => {
                            let mut d = 0u64;
                            for a in 0..len {
                                for b in a + 1..len {
                                    if ti_pos[cj_raw[a] as usize] > ti_pos[cj_raw[b] as usize] {
                                        d += 1;
                                    }
                                }
                            }
                            d as f64
                        }
                        PermMetric::Hamming => {
                            cj_raw.iter().zip(ti_raw).filter(|(x, y)| x != y).count() as f64
                        }
                        PermMetric::Naive => {
                            if cj_raw == ti_raw {
                                0.0
                            } else {
                                1.0
                            }
                        }
                    };
                    let d = match metric {
                        PermMetric::Naive => raw_d,
                        _ => raw_d / maxd,
                    };
                    row[j] += d * d / ls2;
                }
            }
        }
        (t, c) => panic!("accumulate_scaled_dist2: mismatched views {t:?} vs {c:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .ordinal_log("tile", vec![1.0, 2.0, 4.0, 8.0, 16.0])
            .categorical("c", vec!["a", "b", "z"])
            .permutation("p", 3)
            .build()
            .unwrap()
    }

    fn cfg(s: &SearchSpace, tile: f64, c: &str, p: Vec<u8>) -> Configuration {
        s.configuration(&[
            ("tile", ParamValue::Ordinal(tile)),
            ("c", ParamValue::Categorical(c.into())),
            ("p", ParamValue::Permutation(p)),
        ])
        .unwrap()
    }

    #[test]
    fn log_transform_applied_when_enabled() {
        let s = space();
        let a = ModelInput::from_config(&s, &cfg(&s, 1.0, "a", vec![0, 1, 2]), true);
        let b = ModelInput::from_config(&s, &cfg(&s, 2.0, "a", vec![0, 1, 2]), true);
        let c = ModelInput::from_config(&s, &cfg(&s, 8.0, "a", vec![0, 1, 2]), true);
        let d = ModelInput::from_config(&s, &cfg(&s, 16.0, "a", vec![0, 1, 2]), true);
        let d_small = a.dim_dist2(&b, 0, PermMetric::Spearman);
        let d_large = c.dim_dist2(&d, 0, PermMetric::Spearman);
        assert!((d_small - d_large).abs() < 1e-12, "{d_small} vs {d_large}");
    }

    #[test]
    fn log_transform_stripped_when_disabled() {
        let s = space();
        let a = ModelInput::from_config(&s, &cfg(&s, 1.0, "a", vec![0, 1, 2]), false);
        let b = ModelInput::from_config(&s, &cfg(&s, 2.0, "a", vec![0, 1, 2]), false);
        let c = ModelInput::from_config(&s, &cfg(&s, 8.0, "a", vec![0, 1, 2]), false);
        let d = ModelInput::from_config(&s, &cfg(&s, 16.0, "a", vec![0, 1, 2]), false);
        let d_small = a.dim_dist2(&b, 0, PermMetric::Spearman);
        let d_large = c.dim_dist2(&d, 0, PermMetric::Spearman);
        assert!(d_large > 10.0 * d_small, "{d_small} vs {d_large}");
    }

    #[test]
    fn categorical_distance_is_hamming() {
        let s = space();
        let a = ModelInput::from_config(&s, &cfg(&s, 1.0, "a", vec![0, 1, 2]), true);
        let b = ModelInput::from_config(&s, &cfg(&s, 1.0, "b", vec![0, 1, 2]), true);
        let z = ModelInput::from_config(&s, &cfg(&s, 1.0, "z", vec![0, 1, 2]), true);
        assert_eq!(a.dim_dist2(&b, 1, PermMetric::Spearman), 1.0);
        assert_eq!(b.dim_dist2(&z, 1, PermMetric::Spearman), 1.0);
        assert_eq!(a.dim_dist2(&a, 1, PermMetric::Spearman), 0.0);
    }

    #[test]
    fn naive_metric_collapses_permutation_structure() {
        let s = space();
        let a = ModelInput::from_config(&s, &cfg(&s, 1.0, "a", vec![0, 1, 2]), true);
        let near = ModelInput::from_config(&s, &cfg(&s, 1.0, "a", vec![0, 2, 1]), true);
        let far = ModelInput::from_config(&s, &cfg(&s, 1.0, "a", vec![2, 1, 0]), true);
        let d_near_s = a.dim_dist2(&near, 2, PermMetric::Spearman);
        let d_far_s = a.dim_dist2(&far, 2, PermMetric::Spearman);
        assert!(d_near_s < d_far_s);
        assert_eq!(a.dim_dist2(&near, 2, PermMetric::Naive), 1.0);
        assert_eq!(a.dim_dist2(&far, 2, PermMetric::Naive), 1.0);
    }

    #[test]
    fn flat_features_expand_permutations() {
        let s = space();
        let a = ModelInput::from_config(&s, &cfg(&s, 4.0, "b", vec![2, 0, 1]), true);
        let f = a.flat_features();
        // 1 numeric + 1 categorical + 3 permutation positions.
        assert_eq!(f.len(), 5);
        assert_eq!(f[1], 1.0); // category "b" has index 1
        // element 0 sits at position 1, element 1 at 2, element 2 at 0.
        assert_eq!(&f[2..], &[1.0 / 3.0, 2.0 / 3.0, 0.0]);
    }
}
