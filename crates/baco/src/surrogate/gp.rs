//! The Gaussian-process surrogate of Sec. 3.2: a 5/2-Matérn kernel over the
//! weighted per-parameter distance vector, with lengthscale gamma priors and
//! MAP hyperparameter fitting by multistart L-BFGS.
//!
//! This module is the tuner's hot path and is engineered accordingly:
//!
//! * **Batched posterior** — [`GaussianProcess::predict_batch`] scores whole
//!   candidate batches through one blocked multi-right-hand-side triangular
//!   solve with reusable scratch buffers, instead of a per-candidate `O(n²)`
//!   solve plus allocations.
//! * **Cheap multistart** — raw hyperparameter draws are ranked with a
//!   value-only negative log posterior (the gradient costs an extra `O(n³)`
//!   and is discarded during ranking), draws and L-BFGS refinements run
//!   across threads, and the factorization computed by the best objective
//!   evaluation is memoized so [`GaussianProcess::fit`] never refactorizes
//!   the kernel at the chosen hyperparameters.
//! * **Incremental refits** — [`GaussianProcess::fit_with_cache`] reuses the
//!   per-dimension squared-distance matrices across tuning iterations
//!   (extending them by one row/column per new observation) and, when warm
//!   starts are enabled, reuses the previous iteration's hyperparameters
//!   together with a rank-one [`Cholesky::extend`] instead of a full refit.
//! * **Fantasy conditioning** — [`GaussianProcess::condition_on`] folds a
//!   hallucinated observation into a fitted model in `O(n²)` (frozen
//!   hyperparameters, extended factorization), the primitive behind the
//!   batched q-EI proposer in [`crate::tuner::batch`].
//!
//! ```
//! use baco::space::{ParamValue, SearchSpace};
//! use baco::surrogate::{GaussianProcess, GpOptions};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder().integer("x", 0, 20).build()?;
//! let cfg = |x: i64| space.configuration(&[("x", ParamValue::Int(x))]).unwrap();
//! let configs: Vec<_> = [0, 5, 10, 15, 20].map(cfg).into_iter().collect();
//! let y = vec![4.0, 1.0, 0.0, 1.0, 4.0];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let gp = GaussianProcess::fit(&space, &configs, &y, &GpOptions::default(), &mut rng)?;
//!
//! // Kriging-believer fantasy: condition on the model's own mean at x = 12.
//! let (mean, var_before) = gp.predict(&cfg(12));
//! let fantasy = gp.condition_on(&cfg(12), mean)?;
//! let (_, var_after) = fantasy.predict(&cfg(12));
//! assert!(var_after < var_before, "uncertainty collapses at the fantasy point");
//! # Ok::<(), baco::Error>(())
//! ```

use super::cache::GpCache;
use super::features::{accumulate_scaled_dist2, DimView, ModelInput};
use super::mean::{MeanFn, ZERO_MEAN_DIGEST};
use crate::linalg::{dot, mean, std_dev, Cholesky, Matrix};
use crate::opt::{multistart_minimize, LbfgsOptions};
use crate::space::{Configuration, PermMetric, SearchSpace};
use crate::{Error, Result};
use rand::Rng;
use std::sync::{Arc, Mutex};

const SQRT5: f64 = 2.236_067_977_499_79;
/// Jitter always added to the kernel diagonal for numerical stability.
const BASE_JITTER: f64 = 1e-8;
/// Candidates per block in the batched posterior solve; sized so a block of
/// intermediate solutions stays cache-resident next to the Cholesky factor.
const PREDICT_BLOCK: usize = 64;

/// Gamma prior on lengthscales: shape `alpha`, rate `beta` (Sec. 3.2:
/// "gamma priors … chosen to be flexible while cutting out extreme
/// hyperparameter settings").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPrior {
    /// Shape parameter (α > 1 pushes lengthscales away from zero).
    pub alpha: f64,
    /// Rate parameter (larger β penalizes very long lengthscales).
    pub beta: f64,
}

impl Default for GammaPrior {
    fn default() -> Self {
        // Mode at (α−1)/β = 1 on normalized inputs; long tails both ways.
        GammaPrior { alpha: 2.0, beta: 1.0 }
    }
}

impl GammaPrior {
    /// Unnormalized log-density at `x > 0`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        (self.alpha - 1.0) * x.ln() - self.beta * x
    }

    /// Derivative of [`GammaPrior::log_pdf`] w.r.t. `log x`.
    pub fn dlog_pdf_dlogx(&self, x: f64) -> f64 {
        (self.alpha - 1.0) - self.beta * x
    }
}

/// Incremental-refit policy for [`GaussianProcess::fit_with_cache`].
///
/// Between full refits, new observations are folded into the model by
/// extending the cached Cholesky factor at the previous iteration's
/// hyperparameters (`O(n²)` per observation instead of the `O(n³)` multistart
/// refit). A full multistart refit still runs every
/// [`WarmStartOptions::full_refit_every`] fits, or earlier if the warm
/// model's per-point negative log posterior regresses by more than
/// [`WarmStartOptions::nll_regress_tol`] against the last full fit —
/// the signal that the frozen hyperparameters have stopped explaining the
/// data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStartOptions {
    /// Run a full multistart refit after this many consecutive warm fits.
    pub full_refit_every: usize,
    /// Per-point NLL slack allowed before forcing a full refit.
    pub nll_regress_tol: f64,
}

impl Default for WarmStartOptions {
    fn default() -> Self {
        WarmStartOptions {
            full_refit_every: 5,
            nll_regress_tol: 0.5,
        }
    }
}

/// Options controlling GP fitting. The defaults are BaCO's; the ablations of
/// Fig. 8/9 toggle individual fields.
#[derive(Debug, Clone)]
pub struct GpOptions {
    /// Permutation semimetric (Sec. 4.1; default Spearman).
    pub perm_metric: PermMetric,
    /// Apply declared log transforms to inputs (Sec. 4.2).
    pub input_transforms: bool,
    /// Gamma prior on lengthscales, or `None` for plain MLE.
    pub lengthscale_prior: Option<GammaPrior>,
    /// Number of random hyperparameter draws in the multistart.
    pub multistart_samples: usize,
    /// How many of the best draws are refined with L-BFGS.
    pub multistart_keep: usize,
    /// L-BFGS settings for the refinement.
    pub lbfgs: LbfgsOptions,
    /// Threads for the multistart ranking/refinement (`0` = auto). The fitted
    /// model is bit-identical for every thread count.
    pub threads: usize,
    /// Incremental warm-started refit policy for
    /// [`GaussianProcess::fit_with_cache`], or `None` (default) to run a full
    /// multistart refit every iteration. `None` keeps fixed-seed tuner
    /// trajectories identical to the always-full-refit reference.
    pub warm_start: Option<WarmStartOptions>,
    /// Prior mean function `m(x)`: the GP fits the residuals `y − m(x)` and
    /// adds `m(x)` back at prediction time. `None` (default) is the zero
    /// mean — byte-identical to a stack with no mean function at all.
    pub mean_fn: Option<Arc<dyn MeanFn>>,
}

impl Default for GpOptions {
    fn default() -> Self {
        GpOptions {
            perm_metric: PermMetric::Spearman,
            input_transforms: true,
            lengthscale_prior: Some(GammaPrior::default()),
            multistart_samples: 24,
            multistart_keep: 3,
            lbfgs: LbfgsOptions {
                max_iters: 60,
                ..Default::default()
            },
            threads: 0,
            warm_start: None,
            mean_fn: None,
        }
    }
}

impl GpOptions {
    /// The crippled configuration used as `BaCO--` in Fig. 8: no input
    /// transforms, no priors, naive permutation distance, and a single
    /// unrefined hyperparameter draw instead of the full multistart.
    pub fn baco_minus_minus() -> Self {
        GpOptions {
            perm_metric: PermMetric::Naive,
            input_transforms: false,
            lengthscale_prior: None,
            multistart_samples: 1,
            multistart_keep: 1,
            lbfgs: LbfgsOptions {
                max_iters: 10,
                ..Default::default()
            },
            threads: 0,
            warm_start: None,
            mean_fn: None,
        }
    }
}

/// Reusable scratch buffers for [`GaussianProcess::predict_batch_into`].
///
/// [`GaussianProcess::predict_batch`] reuses one of these internally across
/// calls, so the acquisition scorer's steady state reallocates no kernel or
/// solve buffers; hold your own only when driving `predict_batch_into`
/// directly.
#[derive(Debug, Default)]
pub struct PredictScratch {
    ls2: Vec<f64>,
    kstar: Vec<f64>,
    solved: Vec<f64>,
    mean_acc: Vec<f64>,
    var_acc: Vec<f64>,
    /// Candidate-feature buffer for [`GaussianProcess::predict_batch_configs`]
    /// (outer `Vec` capacity reused across rounds).
    feats: Vec<ModelInput>,
}

/// Counts every capacity growth of a prediction workspace's cross-kernel
/// buffers (debug builds only). The budgeted tuner shares one workspace per
/// session via [`GpCache`], so after a warm-up round this must stop moving —
/// asserted by the zero-alloc steady-state test.
#[cfg(debug_assertions)]
static SCRATCH_GROWTHS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// (Debug builds only.) How many times any prediction workspace has had to
/// grow its `n × m` cross-kernel buffers since process start.
#[cfg(debug_assertions)]
pub fn scratch_growth_count() -> usize {
    SCRATCH_GROWTHS.load(std::sync::atomic::Ordering::Relaxed)
}

/// A fitted Gaussian process with the 5/2-Matérn kernel of Eq. (1)–(2).
///
/// Outputs are standardized internally; predictions are returned on the
/// original scale. The predictive variance is *latent* (noise-free), as
/// required by the modified EI acquisition of Sec. 3.3.
#[derive(Debug)]
pub struct GaussianProcess {
    space: SearchSpace,
    inputs: Vec<ModelInput>,
    /// Per-dimension lengthscales ℓᵢ.
    lengthscales: Vec<f64>,
    /// Output scale σ (kernel amplitude).
    outputscale: f64,
    /// Observation noise variance σε².
    noise: f64,
    perm_metric: PermMetric,
    input_transforms: bool,
    /// Prior mean `m(x)`; the model fits the residuals `y − m(x)` (see
    /// [`GpOptions::mean_fn`]). `None` is the zero mean.
    mean_fn: Option<Arc<dyn MeanFn>>,
    y_mean: f64,
    y_std: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    /// Standardized training targets, kept so the model can be *conditioned*
    /// on additional (possibly hallucinated) observations after fitting — the
    /// extended system `K⁺ α⁺ = y⁺` needs the old right-hand side.
    ys: Vec<f64>,
    /// Dimension-major training columns for the batched cross-kernel,
    /// built once per fit instead of once per `predict_batch` call.
    train_views: Vec<DimView>,
    /// Shared scratch so trait-object callers ([`super::ValueModel`]) reuse
    /// the batch buffers across calls; uncontended in practice. When fitted
    /// through a [`GpCache`] the `Arc` is the cache's, so the buffers also
    /// survive across *rounds* (and across refits) of a tuning session.
    scratch: Arc<Mutex<PredictScratch>>,
}

/// Logs hot-path decisions when `BACO_GP_DEBUG` is set (diagnosing why a
/// tuning run is not taking the incremental path).
fn gp_debug(msg: impl FnOnce() -> String) {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    if *ON.get_or_init(|| std::env::var_os("BACO_GP_DEBUG").is_some()) {
        eprintln!("[baco::gp] {}", msg());
    }
}

/// The best (value, θ, factorization) seen while evaluating the negative log
/// posterior, memoized so the final refit does not refactorize the kernel.
struct BestEval {
    value: f64,
    theta: Vec<f64>,
    chol: Cholesky,
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Fits the GP to `(configs, y)` by MAP estimation of lengthscales,
    /// outputscale and noise.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on empty or mismatched data;
    /// [`Error::Numerical`] if every hyperparameter candidate fails to
    /// factorize (pathological duplicate-heavy data).
    pub fn fit<R: Rng + ?Sized>(
        space: &SearchSpace,
        configs: &[Configuration],
        y: &[f64],
        opts: &GpOptions,
        rng: &mut R,
    ) -> Result<Self> {
        let mut cache = GpCache::new();
        Self::fit_with_cache(space, configs, y, opts, rng, &mut cache)
    }

    /// Like [`GaussianProcess::fit`], but persisting per-fit state in `cache`
    /// across tuning iterations.
    ///
    /// The cache always carries the per-dimension squared-distance matrices
    /// forward (an exact optimization: when the new `configs` extend the
    /// previous call's, only the new rows/columns are computed instead of the
    /// full `O(n²·d)` rebuild). When [`GpOptions::warm_start`] is set, whole
    /// refits are additionally replaced by incremental warm fits at the
    /// previous hyperparameters (see [`WarmStartOptions`]).
    ///
    /// With `warm_start == None`, the result is bit-identical to
    /// [`GaussianProcess::fit`] and consumes the same RNG stream.
    ///
    /// # Errors
    /// As [`GaussianProcess::fit`].
    pub fn fit_with_cache<R: Rng + ?Sized>(
        space: &SearchSpace,
        configs: &[Configuration],
        y: &[f64],
        opts: &GpOptions,
        rng: &mut R,
        cache: &mut GpCache,
    ) -> Result<Self> {
        if configs.is_empty() || configs.len() != y.len() {
            return Err(Error::InvalidConfig(format!(
                "GP fit needs matching nonempty data: {} configs, {} values",
                configs.len(),
                y.len()
            )));
        }
        let d = space.len();
        let inputs: Vec<ModelInput> = configs
            .iter()
            .map(|c| ModelInput::from_config(space, c, opts.input_transforms))
            .collect();

        // Residual-space fit: subtract the prior mean (when one is set), then
        // standardize. With no mean function the residuals *are* the targets
        // and every number below matches the historical zero-mean path bit
        // for bit.
        let residuals: Vec<f64>;
        let targets: &[f64] = match &opts.mean_fn {
            Some(m) => {
                residuals = configs
                    .iter()
                    .zip(y)
                    .map(|(c, v)| v - m.mean(space, c))
                    .collect();
                &residuals
            }
            None => y,
        };
        let y_mean = mean(targets);
        let y_std = {
            let s = std_dev(targets);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        let ys: Vec<f64> = targets.iter().map(|v| (v - y_mean) / y_std).collect();

        // Per-dimension squared distances (fixed across the hyperparameter
        // optimization): extend the cached matrices by the new rows/columns,
        // or rebuild from scratch if the history is not a prefix of the
        // current data (restarted tuner, changed options, …).
        let mean_digest = opts.mean_fn.as_ref().map_or(ZERO_MEAN_DIGEST, |m| m.digest());
        cache.sync_distances(&inputs, d, opts.perm_metric, opts.input_transforms, mean_digest);
        let warm = Self::try_warm_fit(&inputs, &ys, opts, cache);
        let is_warm = warm.is_some();
        let (lengthscales, outputscale, noise, chol, alpha, nll_per_point) = match warm {
            Some(state) => state,
            None => Self::full_fit(&inputs, &ys, opts, rng, cache)?,
        };
        // The cached model state (θ + factorization) is only ever read by
        // warm starts; skip the O(n²) clone when the policy is off.
        let model_state = opts.warm_start.is_some().then_some(&chol);
        cache.record_fit(&lengthscales, outputscale, noise, model_state, nll_per_point, is_warm);
        let train_views = (0..d).map(|k| ModelInput::dim_view(&inputs, k)).collect();
        Ok(GaussianProcess {
            space: space.clone(),
            inputs,
            lengthscales,
            outputscale,
            noise,
            perm_metric: opts.perm_metric,
            input_transforms: opts.input_transforms,
            mean_fn: opts.mean_fn.clone(),
            y_mean,
            y_std,
            chol,
            alpha,
            ys,
            train_views,
            scratch: cache.shared_scratch(),
        })
    }

    /// Returns a new GP conditioned on one additional observation `(cfg, y)`
    /// without refitting: the hyperparameters, output standardization and
    /// per-dimension lengthscales are frozen, the kernel factorization is
    /// grown by a rank-one [`Cholesky::extend`] row append (`O(n²)`), and the
    /// posterior weights are re-solved against the extended targets.
    ///
    /// This is the primitive behind *fantasy models* for batched acquisition
    /// (q-point EI): the batch proposer conditions the surrogate on
    /// hallucinated outcomes — the posterior mean at the proposed point
    /// ("kriging believer") or a constant lie — so the next pick in the same
    /// round sees reduced uncertainty around points already chosen. `y` is on
    /// the same scale as the targets the model was fitted on.
    ///
    /// # Errors
    /// [`Error::Numerical`] if the extended kernel matrix is not numerically
    /// positive definite (e.g. `cfg` duplicates a training point under a
    /// near-zero noise estimate). Callers should treat this as "skip the
    /// conditioning", not as a fatal error — the unconditioned model is still
    /// valid.
    pub fn condition_on(&self, cfg: &Configuration, y: f64) -> Result<GaussianProcess> {
        let x = ModelInput::from_config(&self.space, cfg, self.input_transforms);
        let row = self.cross_kernel_row(&x);
        let mut chol = self.chol.clone();
        chol.extend(&row, self.outputscale + self.noise + BASE_JITTER)
            .map_err(|e| Error::Numerical(format!("GP conditioning failed: {e}")))?;
        let mut inputs = self.inputs.clone();
        inputs.push(x);
        let mut ys = self.ys.clone();
        // Fantasy observations are residuals too: subtract the prior mean
        // before standardizing, exactly as the fit does for real targets.
        let y = match &self.mean_fn {
            Some(m) => y - m.mean(&self.space, cfg),
            None => y,
        };
        ys.push((y - self.y_mean) / self.y_std);
        let alpha = chol.solve(&ys);
        let d = self.lengthscales.len();
        let train_views = (0..d).map(|k| ModelInput::dim_view(&inputs, k)).collect();
        Ok(GaussianProcess {
            space: self.space.clone(),
            inputs,
            lengthscales: self.lengthscales.clone(),
            outputscale: self.outputscale,
            noise: self.noise,
            perm_metric: self.perm_metric,
            input_transforms: self.input_transforms,
            mean_fn: self.mean_fn.clone(),
            y_mean: self.y_mean,
            y_std: self.y_std,
            chol,
            alpha,
            ys,
            train_views,
            // Fantasy models share the parent's workspace: same-round picks
            // and later rounds keep hitting already-sized buffers.
            scratch: Arc::clone(&self.scratch),
        })
    }

    /// Attempts the incremental warm fit: previous θ, cached factorization
    /// extended by one row per new observation. Returns `None` when policy or
    /// numerics demand a full refit.
    #[allow(clippy::type_complexity)]
    fn try_warm_fit(
        inputs: &[ModelInput],
        ys: &[f64],
        opts: &GpOptions,
        cache: &GpCache,
    ) -> Option<(Vec<f64>, f64, f64, Cholesky, Vec<f64>, f64)> {
        let ws = opts.warm_start?;
        let (ls, sigma, noise) = cache.hyperparams()?;
        let prev_chol = cache.chol()?;
        let n = inputs.len();
        if cache.fits_since_full() >= ws.full_refit_every.max(1) || prev_chol.dim() > n {
            return None;
        }

        // Fast path: rank-one row appends. This is only numerically (and,
        // for the not-guaranteed-PD semimetric kernel, mathematically) sound
        // when the cached factor is well-conditioned, so guard on its pivot
        // spread and verify every appended pivot. On failure, fall back to
        // one O(n³/6) refactorization at the *frozen* hyperparameters — still
        // orders of magnitude cheaper than the full multistart refit, which
        // pays that factorization hundreds of times.
        let chol = Self::extend_prev_factor(&ls, sigma, noise, prev_chol, cache, n)
            .or_else(|| {
                let kmat = kernel_matrix(cache.d2(), &ls, sigma, noise);
                Cholesky::new_with_jitter(&kmat, 1e-10, 14).ok()
            })?;

        let alpha = chol.solve(ys);
        // The extended factorization makes the NLL-regression guard nearly
        // free: the data fit is ysᵀα and the log-determinant is a diagonal
        // sum.
        let mut nll = 0.5 * dot(ys, &alpha)
            + 0.5 * chol.log_det()
            + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        if let Some(p) = &opts.lengthscale_prior {
            for l in &ls {
                nll -= p.log_pdf(*l);
            }
        }
        let per_point = nll / n as f64;
        if !per_point.is_finite() || per_point > cache.nll_per_point() + ws.nll_regress_tol {
            gp_debug(|| {
                format!(
                    "warm fit declined: NLL regressed ({per_point:.4} per point vs reference {:.4})",
                    cache.nll_per_point()
                )
            });
            return None;
        }
        Some((ls, sigma, noise, chol, alpha, per_point))
    }

    /// The rank-one path of the warm fit: appends one kernel row per new
    /// observation to the cached factorization. `None` when the factor is too
    /// ill-conditioned to trust or an appended pivot goes non-positive (the
    /// semimetric kernel can be genuinely indefinite).
    fn extend_prev_factor(
        ls: &[f64],
        sigma: f64,
        noise: f64,
        prev_chol: &Cholesky,
        cache: &GpCache,
        n: usize,
    ) -> Option<Cholesky> {
        let (mut min_pivot, mut max_pivot) = (f64::INFINITY, 0.0f64);
        for i in 0..prev_chol.dim() {
            let p = prev_chol.factor()[(i, i)];
            min_pivot = min_pivot.min(p);
            max_pivot = max_pivot.max(p);
        }
        // Extension error grows with κ(L)²; beyond ~1e8 the Schur pivots are
        // numerically meaningless.
        if min_pivot <= 0.0 || (max_pivot / min_pivot).powi(2) > 1e8 {
            gp_debug(|| {
                format!(
                    "warm fit: factor too ill-conditioned for row append (pivots {min_pivot:.3e}..{max_pivot:.3e}), refactorizing at frozen θ"
                )
            });
            return None;
        }

        let inv_ls2: Vec<f64> = ls.iter().map(|l| 1.0 / (l * l)).collect();
        let mut chol = prev_chol.clone();
        let mut row = Vec::new();
        for i in chol.dim()..n {
            row.clear();
            row.extend((0..i).map(|j| {
                let s: f64 = cache
                    .d2()
                    .iter()
                    .zip(&inv_ls2)
                    .map(|(m, w)| m[(i, j)] * w)
                    .sum();
                matern52(s.sqrt(), sigma)
            }));
            if let Err(e) = chol.extend(&row, sigma + noise + BASE_JITTER) {
                gp_debug(|| {
                    format!("warm fit: row append failed at point {i} ({e}), refactorizing at frozen θ")
                });
                return None;
            }
        }
        Some(chol)
    }

    /// The full multistart MAP fit (always used when no usable cache state
    /// exists). The factorization computed by the best objective evaluation
    /// is memoized and reused, so the chosen hyperparameters are not
    /// refactorized afterwards.
    #[allow(clippy::type_complexity)]
    fn full_fit<R: Rng + ?Sized>(
        inputs: &[ModelInput],
        ys: &[f64],
        opts: &GpOptions,
        rng: &mut R,
        cache: &GpCache,
    ) -> Result<(Vec<f64>, f64, f64, Cholesky, Vec<f64>, f64)> {
        let n = inputs.len();
        let d2 = cache.d2();
        let d = d2.len();
        let prior = opts.lengthscale_prior;
        let best_eval: Mutex<Option<BestEval>> = Mutex::new(None);

        let value = |theta: &[f64]| -> f64 {
            neg_log_posterior_impl(theta, d2, ys, prior.as_ref(), false, Some(&best_eval)).0
        };
        let value_grad = |theta: &[f64]| -> (f64, Vec<f64>) {
            neg_log_posterior_impl(theta, d2, ys, prior.as_ref(), true, Some(&best_eval))
        };

        let sample_theta = |rng: &mut R| -> Vec<f64> {
            let mut t = Vec::with_capacity(d + 2);
            for _ in 0..d {
                t.push(rng.gen_range((0.05f64).ln()..(3.0f64).ln()));
            }
            t.push(rng.gen_range((0.2f64).ln()..(2.0f64).ln()));
            t.push(rng.gen_range((1e-6f64).ln()..(1e-2f64).ln()));
            t
        };

        let mut best = multistart_minimize(
            rng,
            opts.multistart_samples.max(1),
            opts.multistart_keep.max(1),
            sample_theta,
            &value,
            &value_grad,
            &opts.lbfgs,
            opts.threads,
        );
        // Warm-start mode also seeds one refinement from the previous
        // iteration's θ — frequently already near the optimum, and free of
        // any RNG consumption (so disabled-warm-start runs are unaffected).
        if opts.warm_start.is_some() {
            if let Some((ls, sigma, noise)) = cache.hyperparams() {
                let mut theta0: Vec<f64> = ls.iter().map(|l| l.ln()).collect();
                theta0.push(sigma.ln());
                theta0.push(noise.ln());
                let mut f = |x: &[f64]| value_grad(x);
                let r = crate::opt::minimize(&mut f, theta0, &opts.lbfgs);
                if r.value < best.value {
                    best = r;
                }
            }
        }

        // Decode hyperparameters; fall back to a safe default if the
        // optimizer diverged.
        let theta = if best.value.is_finite() {
            best.x
        } else {
            let mut t = vec![0.0; d];
            t.push(0.0);
            t.push((1e-3f64).ln());
            t
        };
        let lengthscales: Vec<f64> = theta[..d].iter().map(|t| t.exp().clamp(1e-3, 1e3)).collect();
        let outputscale = theta[d].exp().clamp(1e-4, 1e4);
        let noise = theta[d + 1].exp().clamp(1e-9, 1e2);

        // Reuse the memoized factorization when it was computed at exactly
        // the chosen (unclamped) hyperparameters; refactorize only when the
        // optimizer diverged or a clamp changed a decoded value.
        let clamps_free = lengthscales
            .iter()
            .zip(&theta[..d])
            .all(|(l, t)| *l == t.exp())
            && outputscale == theta[d].exp()
            && noise == theta[d + 1].exp();
        let memo = best_eval.into_inner().unwrap();
        let (chol, alpha, final_nll) = match memo {
            Some(m) if clamps_free && m.theta == theta => {
                let per_point = m.value / n as f64;
                (m.chol, m.alpha, per_point)
            }
            _ => {
                let kmat = kernel_matrix(d2, &lengthscales, outputscale, noise);
                let chol = Cholesky::new_with_jitter(&kmat, 1e-10, 14)
                    .map_err(|e| Error::Numerical(format!("GP final factorization failed: {e}")))?;
                let alpha = chol.solve(ys);
                let mut nll = 0.5 * dot(ys, &alpha)
                    + 0.5 * chol.log_det()
                    + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
                if let Some(p) = &prior {
                    for l in &lengthscales {
                        nll -= p.log_pdf(*l);
                    }
                }
                (chol, alpha, nll / n as f64)
            }
        };

        Ok((lengthscales, outputscale, noise, chol, alpha, final_nll))
    }

    /// The cross-kernel row `k(x, xᵢ)` against every training input — shared
    /// by the scalar posterior and by [`GaussianProcess::condition_on`] so
    /// the kernel arithmetic cannot drift between the two.
    fn cross_kernel_row(&self, x: &ModelInput) -> Vec<f64> {
        self.inputs
            .iter()
            .map(|xi| {
                let mut s = 0.0;
                for k in 0..x.len() {
                    s += x.dim_dist2(xi, k, self.perm_metric)
                        / (self.lengthscales[k] * self.lengthscales[k]);
                }
                matern52(s.sqrt(), self.outputscale)
            })
            .collect()
    }

    /// Posterior mean and latent (noise-free) variance at `cfg`, on the
    /// original output scale (prior mean added back when one is set).
    pub fn predict(&self, cfg: &Configuration) -> (f64, f64) {
        let x = ModelInput::from_config(&self.space, cfg, self.input_transforms);
        let (m, v) = self.predict_input(&x);
        match &self.mean_fn {
            Some(f) => (m + f.mean(&self.space, cfg), v),
            None => (m, v),
        }
    }

    /// Like [`GaussianProcess::predict`] but over a prepared [`ModelInput`]
    /// (avoids re-featurizing in hot loops).
    ///
    /// This is the *scalar* path: one `O(n²)` triangular solve and fresh
    /// allocations per call. Candidate scoring should go through
    /// [`GaussianProcess::predict_batch`] instead.
    ///
    /// **Residual space:** a [`ModelInput`] no longer carries the
    /// [`Configuration`] the prior mean is evaluated on, so this returns the
    /// posterior of the residual process (no `m(x)` offset). With the
    /// default zero mean that *is* the full posterior; with a non-zero
    /// [`GpOptions::mean_fn`] use the configuration-based entry points.
    pub fn predict_input(&self, x: &ModelInput) -> (f64, f64) {
        let kstar = self.cross_kernel_row(x);
        let mean_std = dot(&kstar, &self.alpha);
        let v = self.chol.solve(&kstar);
        let var_std = (self.outputscale - dot(&kstar, &v)).max(1e-12);
        (
            self.y_mean + self.y_std * mean_std,
            self.y_std * self.y_std * var_std,
        )
    }

    /// Posterior mean and latent variance for a whole batch of prepared
    /// inputs; equivalent to mapping [`GaussianProcess::predict_input`] but
    /// far faster (see module docs). Residual space, like
    /// [`GaussianProcess::predict_input`].
    pub fn predict_batch(&self, xs: &[ModelInput]) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(xs.len());
        match self.scratch.try_lock() {
            Ok(mut scratch) => self.predict_batch_into(xs, &mut scratch, &mut out),
            // Contended (parallel callers): fall back to a local scratch.
            Err(_) => self.predict_batch_into(xs, &mut PredictScratch::default(), &mut out),
        }
        out
    }

    /// Featurize-and-predict in one step, keeping the candidate-feature
    /// buffer in the shared scratch so its (outer) allocation is reused
    /// across calls and rounds. With the default zero mean this is
    /// bit-identical to `predict_batch(&featurize(cfgs))`; with a
    /// [`GpOptions::mean_fn`] set, each candidate's prior mean is added to
    /// its posterior mean (this is the full-posterior batch entry point —
    /// [`super::ValueModel`] routes through it).
    pub fn predict_batch_configs(&self, cfgs: &[Configuration]) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(cfgs.len());
        match self.scratch.try_lock() {
            Ok(mut scratch) => {
                let mut feats = std::mem::take(&mut scratch.feats);
                #[cfg(debug_assertions)]
                if feats.capacity() < cfgs.len() {
                    SCRATCH_GROWTHS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                feats.clear();
                feats.extend(
                    cfgs.iter()
                        .map(|c| ModelInput::from_config(&self.space, c, self.input_transforms)),
                );
                self.predict_batch_into(&feats, &mut scratch, &mut out);
                scratch.feats = feats;
            }
            Err(_) => {
                let feats = self.featurize(cfgs);
                self.predict_batch_into(&feats, &mut PredictScratch::default(), &mut out);
            }
        }
        if let Some(m) = &self.mean_fn {
            for (cfg, entry) in cfgs.iter().zip(out.iter_mut()) {
                entry.0 += m.mean(&self.space, cfg);
            }
        }
        out
    }

    /// Allocation-free core of [`GaussianProcess::predict_batch`]: results
    /// are appended to `out` (cleared first); `scratch` is reused across
    /// calls. Residual space — no prior-mean offset (see
    /// [`GaussianProcess::predict_input`]); callers with configurations in
    /// hand use [`GaussianProcess::predict_batch_configs`].
    ///
    /// The cross-kernel is built as an `n × m` block and all `m` triangular
    /// systems are forward-substituted together (`var = σ − ‖L⁻¹k*‖²`, so
    /// only the lower solve is needed), giving a unit-stride inner loop over
    /// candidates that vectorizes — unlike the scalar path's per-candidate
    /// dependent dot-product chains.
    pub fn predict_batch_into(
        &self,
        xs: &[ModelInput],
        scratch: &mut PredictScratch,
        out: &mut Vec<(f64, f64)>,
    ) {
        out.clear();
        let n = self.inputs.len();
        let l = self.chol.factor();

        // Same per-dimension divisors as the scalar path (ℓ·ℓ, divided, not
        // multiplied by a reciprocal): the cross-kernel — and therefore the
        // posterior mean — is bit-identical to `predict_input`'s.
        scratch.ls2.clear();
        scratch.ls2.extend(self.lengthscales.iter().map(|l| l * l));

        for block in xs.chunks(PREDICT_BLOCK) {
            let m = block.len();
            #[cfg(debug_assertions)]
            if scratch.kstar.capacity() < n * m || scratch.solved.capacity() < n * m {
                SCRATCH_GROWTHS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            scratch.kstar.clear();
            scratch.kstar.resize(n * m, 0.0);
            scratch.solved.clear();
            scratch.solved.resize(n * m, 0.0);

            // Cross-kernel block K* (train-major, candidate-minor layout):
            // accumulate the lengthscale-weighted squared distance one
            // dimension at a time, then map through the Matérn kernel.
            for (k, train_view) in self.train_views.iter().enumerate() {
                let cand_view = ModelInput::dim_view(block, k);
                accumulate_scaled_dist2(
                    train_view,
                    &cand_view,
                    self.perm_metric,
                    scratch.ls2[k],
                    &mut scratch.kstar,
                );
            }
            for v in scratch.kstar.iter_mut() {
                *v = matern52(v.sqrt(), self.outputscale);
            }

            // Blocked forward substitution: solve L · Y = K* for all m
            // candidates at once. The inner loops run over the candidate
            // index with unit stride.
            for i in 0..n {
                let li = l.row(i);
                let (done, rest) = scratch.solved.split_at_mut(i * m);
                let cur = &mut rest[..m];
                cur.copy_from_slice(&scratch.kstar[i * m..(i + 1) * m]);
                for (t, &c) in li.iter().enumerate().take(i) {
                    if c == 0.0 {
                        continue;
                    }
                    let yt = &done[t * m..(t + 1) * m];
                    for (cj, yj) in cur.iter_mut().zip(yt) {
                        *cj -= c * yj;
                    }
                }
                let diag = li[i];
                for cj in cur.iter_mut() {
                    *cj /= diag;
                }
            }

            // Reduce: mean = k*ᵀ α, variance = σ − ‖L⁻¹ k*‖².
            scratch.mean_acc.clear();
            scratch.mean_acc.resize(m, 0.0);
            scratch.var_acc.clear();
            scratch.var_acc.resize(m, 0.0);
            for i in 0..n {
                let a = self.alpha[i];
                let krow = &scratch.kstar[i * m..(i + 1) * m];
                let yrow = &scratch.solved[i * m..(i + 1) * m];
                for j in 0..m {
                    scratch.mean_acc[j] += a * krow[j];
                    scratch.var_acc[j] += yrow[j] * yrow[j];
                }
            }
            for j in 0..m {
                let mean_std = scratch.mean_acc[j];
                let var_std = (self.outputscale - scratch.var_acc[j]).max(1e-12);
                out.push((
                    self.y_mean + self.y_std * mean_std,
                    self.y_std * self.y_std * var_std,
                ));
            }
        }
    }

    /// Featurizes `cfgs` for this model (hot loops featurize once and then
    /// batch-predict).
    pub fn featurize(&self, cfgs: &[Configuration]) -> Vec<ModelInput> {
        cfgs.iter()
            .map(|c| ModelInput::from_config(&self.space, c, self.input_transforms))
            .collect()
    }

    /// The fitted per-parameter lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// The fitted kernel amplitude σ.
    pub fn outputscale(&self) -> f64 {
        self.outputscale
    }

    /// The fitted observation-noise variance σε².
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Number of training points.
    pub fn train_len(&self) -> usize {
        self.inputs.len()
    }
}

/// 5/2-Matérn kernel value at distance `dist` with amplitude `sigma`.
fn matern52(dist: f64, sigma: f64) -> f64 {
    let t = SQRT5 * dist;
    sigma * (1.0 + t + 5.0 / 3.0 * dist * dist) * (-t).exp()
}

fn kernel_matrix(d2: &[Matrix], ls: &[f64], sigma: f64, noise: f64) -> Matrix {
    let n = d2.first().map_or(0, Matrix::rows);
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        k[(i, i)] = sigma + noise + BASE_JITTER;
        for j in (i + 1)..n {
            let mut s = 0.0;
            for (kk, m) in d2.iter().enumerate() {
                s += m[(i, j)] / (ls[kk] * ls[kk]);
            }
            let v = matern52(s.sqrt(), sigma);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
    }
    k
}

/// Negative log posterior (marginal likelihood + lengthscale priors) and its
/// gradient w.r.t. θ = [log ℓ…, log σ, log σε²].
///
/// Shared NLL implementation. With `want_grad == false` the `O(n³)` solve for
/// `K⁻¹` (needed only by the gradient) is skipped — this is what makes
/// multistart ranking cheap. When `memo` is given, the factorization computed
/// for the best value seen so far is kept for reuse by the final fit.
fn neg_log_posterior_impl(
    theta: &[f64],
    d2: &[Matrix],
    ys: &[f64],
    prior: Option<&GammaPrior>,
    want_grad: bool,
    memo: Option<&Mutex<Option<BestEval>>>,
) -> (f64, Vec<f64>) {
    let d = d2.len();
    let n = ys.len();
    let bad = |_: ()| (f64::INFINITY, vec![0.0; theta.len()]);
    if theta.iter().any(|t| !t.is_finite() || t.abs() > 40.0) {
        return bad(());
    }
    let ls: Vec<f64> = theta[..d].iter().map(|t| t.exp()).collect();
    let sigma = theta[d].exp();
    let noise = theta[d + 1].exp();

    let kmat = kernel_matrix(d2, &ls, sigma, noise);
    let Ok(chol) = Cholesky::new(&kmat) else {
        return bad(());
    };
    let alpha = chol.solve(ys);
    let data_fit: f64 = dot(ys, &alpha);
    let mut nll = 0.5 * data_fit
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    if let Some(p) = prior {
        for l in &ls {
            nll -= p.log_pdf(*l);
        }
    }

    if let Some(memo) = memo {
        if nll.is_finite() {
            let mut slot = memo.lock().unwrap();
            if slot.as_ref().is_none_or(|b| nll < b.value) {
                *slot = Some(BestEval {
                    value: nll,
                    theta: theta.to_vec(),
                    chol: chol.clone(),
                    alpha: alpha.clone(),
                });
            }
        }
    }

    if !want_grad {
        return (nll, Vec::new());
    }

    // B = K⁻¹ − α αᵀ (only needed for gradients).
    let mut kinv = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = chol.solve(&e);
        for i in 0..n {
            kinv[(i, j)] = col[i];
        }
    }
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = kinv[(i, j)] - alpha[i] * alpha[j];
        }
    }

    // Recompute scaled distances and the Matérn pieces for the gradient.
    let mut grad = vec![0.0; d + 2];
    // C_ij = (5/3) σ (1 + √5 d_ij) e^{−√5 d_ij}; ∂k/∂logℓ_k = C_ij r²_k/ℓ_k².
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut s = 0.0;
            for (kk, m) in d2.iter().enumerate() {
                s += m[(i, j)] / (ls[kk] * ls[kk]);
            }
            let dist = s.sqrt();
            let e = (-SQRT5 * dist).exp();
            let kval = sigma * (1.0 + SQRT5 * dist + 5.0 / 3.0 * dist * dist) * e;
            let c = 5.0 / 3.0 * sigma * (1.0 + SQRT5 * dist) * e;
            let bij = b[(i, j)];
            // log σ gradient accumulates off-diagonal kernel part.
            grad[d] += 0.5 * bij * kval;
            for (kk, m) in d2.iter().enumerate() {
                let r2 = m[(i, j)] / (ls[kk] * ls[kk]);
                grad[kk] += 0.5 * bij * c * r2;
            }
        }
    }
    // Diagonal contributions: k_ii = σ (+ noise); ∂/∂logσ = σ, ∂/∂logσε² = σε².
    for i in 0..n {
        grad[d] += 0.5 * b[(i, i)] * sigma;
        grad[d + 1] += 0.5 * b[(i, i)] * noise;
    }

    if let Some(p) = prior {
        for (kk, l) in ls.iter().enumerate() {
            grad[kk] -= p.dlog_pdf_dlogx(*l);
        }
    }

    (nll, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space_1d() -> SearchSpace {
        SearchSpace::builder().integer("x", 0, 20).build().unwrap()
    }

    fn cfg_x(s: &SearchSpace, x: i64) -> Configuration {
        s.configuration(&[("x", ParamValue::Int(x))]).unwrap()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let s = space_1d();
        let configs: Vec<_> = [0, 3, 7, 12, 20].iter().map(|&x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = configs
            .iter()
            .map(|c| (c.value("x").as_f64() / 5.0).sin())
            .collect();
        let inputs: Vec<ModelInput> = configs
            .iter()
            .map(|c| ModelInput::from_config(&s, c, true))
            .collect();
        let n = inputs.len();
        let mut d2 = vec![Matrix::zeros(n, n)];
        for i in 0..n {
            for j in 0..n {
                d2[0][(i, j)] = inputs[i].dim_dist2(&inputs[j], 0, PermMetric::Spearman);
            }
        }
        let ym = mean(&y);
        let ysd = std_dev(&y);
        let ys: Vec<f64> = y.iter().map(|v| (v - ym) / ysd).collect();
        let prior = GammaPrior::default();

        let nll = |t: &[f64]| neg_log_posterior_impl(t, &d2, &ys, Some(&prior), true, None);
        let theta = vec![(0.4f64).ln(), (0.9f64).ln(), (1e-3f64).ln()];
        let (f0, g) = nll(&theta);
        assert!(f0.is_finite());
        let h = 1e-6;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += h;
            let (fp, _) = nll(&tp);
            let mut tm = theta.clone();
            tm[k] -= h;
            let (fm, _) = nll(&tm);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - g[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "grad[{k}]: analytic {} vs fd {fd}",
                g[k]
            );
        }
    }

    #[test]
    fn value_only_nll_matches_gradient_path() {
        let s = space_1d();
        let configs: Vec<_> = [0, 4, 9, 15, 20].iter().map(|&x| cfg_x(&s, x)).collect();
        let inputs: Vec<ModelInput> = configs
            .iter()
            .map(|c| ModelInput::from_config(&s, c, true))
            .collect();
        let n = inputs.len();
        let mut d2 = vec![Matrix::zeros(n, n)];
        for i in 0..n {
            for j in 0..n {
                d2[0][(i, j)] = inputs[i].dim_dist2(&inputs[j], 0, PermMetric::Spearman);
            }
        }
        let ys = vec![-1.2, -0.3, 0.4, 0.6, 0.5];
        let prior = GammaPrior::default();
        let theta = vec![(0.7f64).ln(), (1.1f64).ln(), (2e-3f64).ln()];
        let (v_grad, g) = neg_log_posterior_impl(&theta, &d2, &ys, Some(&prior), true, None);
        let (v_only, empty) = neg_log_posterior_impl(&theta, &d2, &ys, Some(&prior), false, None);
        assert_eq!(v_grad.to_bits(), v_only.to_bits());
        assert!(!g.is_empty() && empty.is_empty());
    }

    #[test]
    fn interpolates_training_data_with_low_noise() {
        let s = space_1d();
        let configs: Vec<_> = (0..=20).step_by(2).map(|x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = configs
            .iter()
            .map(|c| {
                let x = c.value("x").as_f64();
                (x - 10.0) * (x - 10.0) / 20.0
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        for (c, yi) in configs.iter().zip(&y) {
            let (m, v) = gp.predict(c);
            assert!((m - yi).abs() < 0.35, "mean {m} vs {yi}");
            assert!(v >= 0.0);
        }
        // Prediction between points should also be sane (smooth function).
        let (m, _) = gp.predict(&cfg_x(&s, 9));
        assert!((m - 0.05).abs() < 1.0, "interpolated mean {m}");
    }

    #[test]
    fn variance_grows_away_from_data() {
        let s = SearchSpace::builder().integer("x", 0, 100).build().unwrap();
        let configs: Vec<_> = [0i64, 2, 4, 6, 8, 10].iter().map(|&x| {
            s.configuration(&[("x", ParamValue::Int(x))]).unwrap()
        }).collect();
        let y = vec![1.0, 1.1, 0.9, 1.05, 0.95, 1.0];
        let mut rng = StdRng::seed_from_u64(3);
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        let (_, v_near) = gp.predict(&s.configuration(&[("x", ParamValue::Int(5))]).unwrap());
        let (_, v_far) = gp.predict(&s.configuration(&[("x", ParamValue::Int(90))]).unwrap());
        assert!(v_far > v_near, "far {v_far} vs near {v_near}");
    }

    #[test]
    fn handles_single_point_and_constant_outputs() {
        let s = space_1d();
        let mut rng = StdRng::seed_from_u64(4);
        let one = vec![cfg_x(&s, 5)];
        let gp = GaussianProcess::fit(&s, &one, &[3.0], &GpOptions::default(), &mut rng).unwrap();
        let (m, v) = gp.predict(&cfg_x(&s, 5));
        assert!((m - 3.0).abs() < 0.5);
        assert!(v >= 0.0);

        let configs: Vec<_> = (0..5).map(|x| cfg_x(&s, x * 4)).collect();
        let gp =
            GaussianProcess::fit(&s, &configs, &[2.0; 5], &GpOptions::default(), &mut rng).unwrap();
        let (m, _) = gp.predict(&cfg_x(&s, 3));
        assert!((m - 2.0).abs() < 0.5, "constant mean {m}");
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let s = space_1d();
        let mut rng = StdRng::seed_from_u64(5);
        let configs = vec![cfg_x(&s, 5), cfg_x(&s, 5), cfg_x(&s, 9)];
        let y = vec![1.0, 1.2, 2.0];
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        let (m, _) = gp.predict(&cfg_x(&s, 5));
        assert!((m - 1.1).abs() < 0.4, "noisy duplicate mean {m}");
    }

    #[test]
    fn empty_fit_is_error() {
        let s = space_1d();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(GaussianProcess::fit(&s, &[], &[], &GpOptions::default(), &mut rng).is_err());
    }

    #[test]
    fn mixed_space_with_permutation_fits() {
        let s = SearchSpace::builder()
            .ordinal_log("tile", vec![1.0, 2.0, 4.0, 8.0])
            .categorical("m", vec!["a", "b"])
            .permutation("p", 3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut configs = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let cfg = s.sample_dense(&mut rng);
            // Synthetic objective touching every type.
            let t = cfg.value("tile").as_f64().log2();
            let c = if cfg.value("m").as_str() == "a" { 0.0 } else { 1.0 };
            let p0 = cfg.value("p").as_permutation()[0] as f64;
            y.push(t + c + 0.5 * p0 + (i as f64) * 0.01);
            configs.push(cfg);
        }
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        assert_eq!(gp.lengthscales().len(), 3);
        let (m, v) = gp.predict(&configs[0]);
        assert!(m.is_finite() && v.is_finite() && v >= 0.0);
    }

    #[test]
    fn matern_kernel_basics() {
        assert!((matern52(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!(matern52(1.0, 1.0) < 1.0);
        assert!(matern52(5.0, 1.0) < matern52(1.0, 1.0));
        assert!(matern52(50.0, 1.0) >= 0.0);
    }

    #[test]
    fn batch_matches_scalar_prediction() {
        let s = SearchSpace::builder()
            .ordinal_log("tile", vec![1.0, 2.0, 4.0, 8.0, 16.0])
            .integer("unroll", 1, 8)
            .categorical("par", vec!["seq", "par"])
            .permutation("ord", 3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let configs: Vec<_> = (0..40).map(|_| s.sample_dense(&mut rng)).collect();
        let y: Vec<f64> = configs
            .iter()
            .map(|c| c.value("tile").as_f64().log2() + 0.3 * c.value("unroll").as_f64())
            .collect();
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        let probes: Vec<_> = (0..150).map(|_| s.sample_dense(&mut rng)).collect();
        let inputs = gp.featurize(&probes);
        let batch = gp.predict_batch(&inputs);
        assert_eq!(batch.len(), probes.len());
        for (x, (bm, bv)) in inputs.iter().zip(&batch) {
            let (sm, sv) = gp.predict_input(x);
            assert!((sm - bm).abs() <= 1e-12 * (1.0 + sm.abs()), "mean {sm} vs {bm}");
            assert!((sv - bv).abs() <= 1e-10 * (1.0 + sv.abs()), "var {sv} vs {bv}");
        }
    }

    #[test]
    fn batch_results_independent_of_batch_size() {
        let s = space_1d();
        let configs: Vec<_> = (0..=20).step_by(3).map(|x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = configs.iter().map(|c| c.value("x").as_f64().sin()).collect();
        let mut rng = StdRng::seed_from_u64(12);
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        let probes: Vec<_> = (0..=20).map(|x| cfg_x(&s, x)).collect();
        let inputs = gp.featurize(&probes);
        let whole = gp.predict_batch(&inputs);
        // Singletons and odd block splits must give bit-identical results.
        for (i, x) in inputs.iter().enumerate() {
            let single = gp.predict_batch(std::slice::from_ref(x));
            assert_eq!(single[0].0.to_bits(), whole[i].0.to_bits());
            assert_eq!(single[0].1.to_bits(), whole[i].1.to_bits());
        }
    }

    #[test]
    fn cached_fit_matches_fresh_fit_without_warm_start() {
        let s = space_1d();
        let opts = GpOptions::default();
        let all: Vec<_> = (0..=20).step_by(2).map(|x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = all.iter().map(|c| (c.value("x").as_f64() / 3.0).cos()).collect();

        let mut cache = GpCache::new();
        for n in 3..=all.len() {
            let mut rng_a = StdRng::seed_from_u64(100 + n as u64);
            let mut rng_b = rng_a.clone();
            let cached =
                GaussianProcess::fit_with_cache(&s, &all[..n], &y[..n], &opts, &mut rng_a, &mut cache)
                    .unwrap();
            let fresh = GaussianProcess::fit(&s, &all[..n], &y[..n], &opts, &mut rng_b).unwrap();
            assert_eq!(rng_a, rng_b, "cached fit must consume the same RNG stream");
            for (a, b) in cached.lengthscales().iter().zip(fresh.lengthscales()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(cached.outputscale().to_bits(), fresh.outputscale().to_bits());
            assert_eq!(cached.noise().to_bits(), fresh.noise().to_bits());
            let probe = cfg_x(&s, 7);
            let (ma, va) = cached.predict(&probe);
            let (mb, vb) = fresh.predict(&probe);
            assert_eq!(ma.to_bits(), mb.to_bits());
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    /// A prior mean m(x) = x for the residual-fit equivalence tests.
    #[derive(Debug)]
    struct XMean;

    impl crate::surrogate::mean::MeanFn for XMean {
        fn mean(&self, _space: &SearchSpace, cfg: &Configuration) -> f64 {
            cfg.value("x").as_f64()
        }

        fn digest(&self) -> u64 {
            0x1234
        }
    }

    /// The residual-fit contract: fitting (y, mean m) must be the same model
    /// as fitting the residuals y − m(x) with a zero mean, shifted back by
    /// m(x) at prediction time — hyperparameters, posteriors and fantasy
    /// conditioning all bitwise.
    #[test]
    fn mean_fn_fit_is_zero_mean_fit_on_residuals() {
        let s = space_1d();
        let configs: Vec<_> = (0..=20).step_by(2).map(|x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = configs
            .iter()
            .map(|c| {
                let x = c.value("x").as_f64();
                x + (x / 4.0).sin()
            })
            .collect();
        let resid: Vec<f64> = configs
            .iter()
            .zip(&y)
            .map(|(c, v)| v - c.value("x").as_f64())
            .collect();

        let with_mean = GpOptions {
            mean_fn: Some(Arc::new(XMean)),
            ..GpOptions::default()
        };
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = rng_a.clone();
        let a = GaussianProcess::fit(&s, &configs, &y, &with_mean, &mut rng_a).unwrap();
        let b = GaussianProcess::fit(&s, &configs, &resid, &GpOptions::default(), &mut rng_b)
            .unwrap();
        assert_eq!(rng_a, rng_b, "mean-fn fit must consume the same RNG stream");
        for (la, lb) in a.lengthscales().iter().zip(b.lengthscales()) {
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(a.outputscale().to_bits(), b.outputscale().to_bits());
        assert_eq!(a.noise().to_bits(), b.noise().to_bits());

        let probes: Vec<_> = (0..=20).map(|x| cfg_x(&s, x)).collect();
        let batch_a = a.predict_batch_configs(&probes);
        let batch_b = b.predict_batch_configs(&probes);
        for (p, ((ma, va), (mb, vb))) in probes.iter().zip(batch_a.iter().zip(&batch_b)) {
            let offset = p.value("x").as_f64();
            assert_eq!(ma.to_bits(), (mb + offset).to_bits(), "batch mean at {p}");
            assert_eq!(va.to_bits(), vb.to_bits(), "variance is mean-free at {p}");
            // Scalar path agrees with the batch path's offset handling.
            let (sa, _) = a.predict(p);
            let (sb, _) = b.predict(p);
            assert_eq!(sa.to_bits(), (sb + offset).to_bits(), "scalar mean at {p}");
        }

        // Fantasy anchors are residuals too: conditioning the mean-fn model
        // on a raw target equals conditioning the residual model on the
        // residual.
        let anchor = cfg_x(&s, 7);
        let y_anchor = 7.0 + (7.0f64 / 4.0).sin();
        let fa = a.condition_on(&anchor, y_anchor).unwrap();
        let fb = b.condition_on(&anchor, y_anchor - 7.0).unwrap();
        let probe = cfg_x(&s, 9);
        let (fma, fva) = fa.predict(&probe);
        let (fmb, fvb) = fb.predict(&probe);
        assert_eq!(fma.to_bits(), (fmb + 9.0).to_bits());
        assert_eq!(fva.to_bits(), fvb.to_bits());
    }

    #[test]
    fn warm_started_fits_track_fresh_quality() {
        let s = space_1d();
        let opts_warm = GpOptions {
            warm_start: Some(WarmStartOptions::default()),
            ..GpOptions::default()
        };
        let all: Vec<_> = (0..=20).map(|x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = all
            .iter()
            .map(|c| {
                let x = c.value("x").as_f64();
                (x - 9.0) * (x - 9.0) / 25.0
            })
            .collect();

        let mut cache = GpCache::new();
        let mut warm_fits = 0;
        for n in 4..=all.len() {
            let mut rng = StdRng::seed_from_u64(7);
            let before = rng.clone();
            let gp = GaussianProcess::fit_with_cache(
                &s, &all[..n], &y[..n], &opts_warm, &mut rng, &mut cache,
            )
            .unwrap();
            if rng == before && n > 4 {
                warm_fits += 1; // warm fits consume no RNG
            }
            // Model quality must not collapse between full refits.
            for (c, yi) in all[..n].iter().zip(&y[..n]) {
                let (m, v) = gp.predict(c);
                assert!((m - yi).abs() < 1.2, "n={n}: mean {m} vs {yi}");
                assert!(v >= 0.0 && v.is_finite());
            }
        }
        assert!(warm_fits >= 8, "expected mostly warm fits, got {warm_fits}");
    }
}
