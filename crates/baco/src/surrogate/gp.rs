//! The Gaussian-process surrogate of Sec. 3.2: a 5/2-Matérn kernel over the
//! weighted per-parameter distance vector, with lengthscale gamma priors and
//! MAP hyperparameter fitting by multistart L-BFGS.

use super::features::ModelInput;
use crate::linalg::{dot, mean, std_dev, Cholesky, Matrix};
use crate::opt::{multistart_minimize, LbfgsOptions};
use crate::space::{Configuration, PermMetric, SearchSpace};
use crate::{Error, Result};
use rand::Rng;

const SQRT5: f64 = 2.236_067_977_499_79;
/// Jitter always added to the kernel diagonal for numerical stability.
const BASE_JITTER: f64 = 1e-8;

/// Gamma prior on lengthscales: shape `alpha`, rate `beta` (Sec. 3.2:
/// "gamma priors … chosen to be flexible while cutting out extreme
/// hyperparameter settings").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPrior {
    /// Shape parameter (α > 1 pushes lengthscales away from zero).
    pub alpha: f64,
    /// Rate parameter (larger β penalizes very long lengthscales).
    pub beta: f64,
}

impl Default for GammaPrior {
    fn default() -> Self {
        // Mode at (α−1)/β = 1 on normalized inputs; long tails both ways.
        GammaPrior { alpha: 2.0, beta: 1.0 }
    }
}

impl GammaPrior {
    /// Unnormalized log-density at `x > 0`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        (self.alpha - 1.0) * x.ln() - self.beta * x
    }

    /// Derivative of [`GammaPrior::log_pdf`] w.r.t. `log x`.
    pub fn dlog_pdf_dlogx(&self, x: f64) -> f64 {
        (self.alpha - 1.0) - self.beta * x
    }
}

/// Options controlling GP fitting. The defaults are BaCO's; the ablations of
/// Fig. 8/9 toggle individual fields.
#[derive(Debug, Clone)]
pub struct GpOptions {
    /// Permutation semimetric (Sec. 4.1; default Spearman).
    pub perm_metric: PermMetric,
    /// Apply declared log transforms to inputs (Sec. 4.2).
    pub input_transforms: bool,
    /// Gamma prior on lengthscales, or `None` for plain MLE.
    pub lengthscale_prior: Option<GammaPrior>,
    /// Number of random hyperparameter draws in the multistart.
    pub multistart_samples: usize,
    /// How many of the best draws are refined with L-BFGS.
    pub multistart_keep: usize,
    /// L-BFGS settings for the refinement.
    pub lbfgs: LbfgsOptions,
}

impl Default for GpOptions {
    fn default() -> Self {
        GpOptions {
            perm_metric: PermMetric::Spearman,
            input_transforms: true,
            lengthscale_prior: Some(GammaPrior::default()),
            multistart_samples: 24,
            multistart_keep: 3,
            lbfgs: LbfgsOptions {
                max_iters: 60,
                ..Default::default()
            },
        }
    }
}

impl GpOptions {
    /// The crippled configuration used as `BaCO--` in Fig. 8: no input
    /// transforms, no priors, naive permutation distance, and a single
    /// unrefined hyperparameter draw instead of the full multistart.
    pub fn baco_minus_minus() -> Self {
        GpOptions {
            perm_metric: PermMetric::Naive,
            input_transforms: false,
            lengthscale_prior: None,
            multistart_samples: 1,
            multistart_keep: 1,
            lbfgs: LbfgsOptions {
                max_iters: 10,
                ..Default::default()
            },
        }
    }
}

/// A fitted Gaussian process with the 5/2-Matérn kernel of Eq. (1)–(2).
///
/// Outputs are standardized internally; predictions are returned on the
/// original scale. The predictive variance is *latent* (noise-free), as
/// required by the modified EI acquisition of Sec. 3.3.
#[derive(Debug)]
pub struct GaussianProcess {
    space: SearchSpace,
    inputs: Vec<ModelInput>,
    /// Per-dimension lengthscales ℓᵢ.
    lengthscales: Vec<f64>,
    /// Output scale σ (kernel amplitude).
    outputscale: f64,
    /// Observation noise variance σε².
    noise: f64,
    perm_metric: PermMetric,
    input_transforms: bool,
    y_mean: f64,
    y_std: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Fits the GP to `(configs, y)` by MAP estimation of lengthscales,
    /// outputscale and noise.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on empty or mismatched data;
    /// [`Error::Numerical`] if every hyperparameter candidate fails to
    /// factorize (pathological duplicate-heavy data).
    pub fn fit<R: Rng + ?Sized>(
        space: &SearchSpace,
        configs: &[Configuration],
        y: &[f64],
        opts: &GpOptions,
        rng: &mut R,
    ) -> Result<Self> {
        if configs.is_empty() || configs.len() != y.len() {
            return Err(Error::InvalidConfig(format!(
                "GP fit needs matching nonempty data: {} configs, {} values",
                configs.len(),
                y.len()
            )));
        }
        let n = configs.len();
        let d = space.len();
        let inputs: Vec<ModelInput> = configs
            .iter()
            .map(|c| ModelInput::from_config(space, c, opts.input_transforms))
            .collect();

        // Standardize outputs.
        let y_mean = mean(y);
        let y_std = {
            let s = std_dev(y);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        // Precompute per-dimension squared distances (fixed across the
        // hyperparameter optimization).
        let mut d2 = vec![Matrix::zeros(n, n); d];
        for k in 0..d {
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = inputs[i].dim_dist2(&inputs[j], k, opts.perm_metric);
                    d2[k][(i, j)] = v;
                    d2[k][(j, i)] = v;
                }
            }
        }

        // θ = [log ℓ_1..d, log σ, log σε²].
        let nll = |theta: &[f64]| -> (f64, Vec<f64>) {
            neg_log_posterior(theta, &d2, &ys, opts.lengthscale_prior.as_ref())
        };

        let sample_theta = |rng: &mut R| -> Vec<f64> {
            let mut t = Vec::with_capacity(d + 2);
            for _ in 0..d {
                t.push(rng.gen_range((0.05f64).ln()..(3.0f64).ln()));
            }
            t.push(rng.gen_range((0.2f64).ln()..(2.0f64).ln()));
            t.push(rng.gen_range((1e-6f64).ln()..(1e-2f64).ln()));
            t
        };

        let mut f = |theta: &[f64]| nll(theta);
        let best = multistart_minimize(
            rng,
            opts.multistart_samples.max(1),
            opts.multistart_keep.max(1),
            sample_theta,
            &mut f,
            &opts.lbfgs,
        );

        // Decode hyperparameters; fall back to a safe default if the
        // optimizer diverged.
        let theta = if best.value.is_finite() {
            best.x
        } else {
            let mut t = vec![0.0; d];
            t.push(0.0);
            t.push((1e-3f64).ln());
            t
        };
        let lengthscales: Vec<f64> = theta[..d].iter().map(|t| t.exp().clamp(1e-3, 1e3)).collect();
        let outputscale = theta[d].exp().clamp(1e-4, 1e4);
        let noise = theta[d + 1].exp().clamp(1e-9, 1e2);

        // Final factorization at the chosen hyperparameters.
        let kmat = kernel_matrix(&d2, &lengthscales, outputscale, noise);
        let chol = Cholesky::new_with_jitter(&kmat, 1e-10, 14)
            .map_err(|e| Error::Numerical(format!("GP final factorization failed: {e}")))?;
        let alpha = chol.solve(&ys);

        Ok(GaussianProcess {
            space: space.clone(),
            inputs,
            lengthscales,
            outputscale,
            noise,
            perm_metric: opts.perm_metric,
            input_transforms: opts.input_transforms,
            y_mean,
            y_std,
            chol,
            alpha,
        })
    }

    /// Posterior mean and latent (noise-free) variance at `cfg`, on the
    /// original output scale.
    pub fn predict(&self, cfg: &Configuration) -> (f64, f64) {
        let x = ModelInput::from_config(&self.space, cfg, self.input_transforms);
        self.predict_input(&x)
    }

    /// Like [`GaussianProcess::predict`] but over a prepared [`ModelInput`]
    /// (avoids re-featurizing in hot loops).
    pub fn predict_input(&self, x: &ModelInput) -> (f64, f64) {
        let n = self.inputs.len();
        let mut kstar = vec![0.0; n];
        for (i, xi) in self.inputs.iter().enumerate() {
            let mut s = 0.0;
            for k in 0..x.len() {
                s += x.dim_dist2(xi, k, self.perm_metric) / (self.lengthscales[k] * self.lengthscales[k]);
            }
            kstar[i] = matern52(s.sqrt(), self.outputscale);
        }
        let mean_std = dot(&kstar, &self.alpha);
        let v = self.chol.solve(&kstar);
        let var_std = (self.outputscale - dot(&kstar, &v)).max(1e-12);
        (
            self.y_mean + self.y_std * mean_std,
            self.y_std * self.y_std * var_std,
        )
    }

    /// The fitted per-parameter lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// The fitted kernel amplitude σ.
    pub fn outputscale(&self) -> f64 {
        self.outputscale
    }

    /// The fitted observation-noise variance σε².
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Number of training points.
    pub fn train_len(&self) -> usize {
        self.inputs.len()
    }
}

/// 5/2-Matérn kernel value at distance `dist` with amplitude `sigma`.
fn matern52(dist: f64, sigma: f64) -> f64 {
    let t = SQRT5 * dist;
    sigma * (1.0 + t + 5.0 / 3.0 * dist * dist) * (-t).exp()
}

fn kernel_matrix(d2: &[Matrix], ls: &[f64], sigma: f64, noise: f64) -> Matrix {
    let n = d2.first().map_or(0, Matrix::rows);
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        k[(i, i)] = sigma + noise + BASE_JITTER;
        for j in (i + 1)..n {
            let mut s = 0.0;
            for (kk, m) in d2.iter().enumerate() {
                s += m[(i, j)] / (ls[kk] * ls[kk]);
            }
            let v = matern52(s.sqrt(), sigma);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
    }
    k
}

/// Negative log posterior (marginal likelihood + lengthscale priors) and its
/// gradient w.r.t. θ = [log ℓ…, log σ, log σε²].
fn neg_log_posterior(
    theta: &[f64],
    d2: &[Matrix],
    ys: &[f64],
    prior: Option<&GammaPrior>,
) -> (f64, Vec<f64>) {
    let d = d2.len();
    let n = ys.len();
    let bad = |_: ()| (f64::INFINITY, vec![0.0; theta.len()]);
    if theta.iter().any(|t| !t.is_finite() || t.abs() > 40.0) {
        return bad(());
    }
    let ls: Vec<f64> = theta[..d].iter().map(|t| t.exp()).collect();
    let sigma = theta[d].exp();
    let noise = theta[d + 1].exp();

    let kmat = kernel_matrix(d2, &ls, sigma, noise);
    let Ok(chol) = Cholesky::new(&kmat) else {
        return bad(());
    };
    let alpha = chol.solve(ys);
    let data_fit: f64 = dot(ys, &alpha);
    let mut nll = 0.5 * data_fit
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // B = K⁻¹ − α αᵀ (only needed for gradients).
    let mut kinv = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = chol.solve(&e);
        for i in 0..n {
            kinv[(i, j)] = col[i];
        }
    }
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = kinv[(i, j)] - alpha[i] * alpha[j];
        }
    }

    // Recompute scaled distances and the Matérn pieces for the gradient.
    let mut grad = vec![0.0; d + 2];
    // C_ij = (5/3) σ (1 + √5 d_ij) e^{−√5 d_ij}; ∂k/∂logℓ_k = C_ij r²_k/ℓ_k².
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut s = 0.0;
            for (kk, m) in d2.iter().enumerate() {
                s += m[(i, j)] / (ls[kk] * ls[kk]);
            }
            let dist = s.sqrt();
            let e = (-SQRT5 * dist).exp();
            let kval = sigma * (1.0 + SQRT5 * dist + 5.0 / 3.0 * dist * dist) * e;
            let c = 5.0 / 3.0 * sigma * (1.0 + SQRT5 * dist) * e;
            let bij = b[(i, j)];
            // log σ gradient accumulates off-diagonal kernel part.
            grad[d] += 0.5 * bij * kval;
            for (kk, m) in d2.iter().enumerate() {
                let r2 = m[(i, j)] / (ls[kk] * ls[kk]);
                grad[kk] += 0.5 * bij * c * r2;
            }
        }
    }
    // Diagonal contributions: k_ii = σ (+ noise); ∂/∂logσ = σ, ∂/∂logσε² = σε².
    for i in 0..n {
        grad[d] += 0.5 * b[(i, i)] * sigma;
        grad[d + 1] += 0.5 * b[(i, i)] * noise;
    }

    if let Some(p) = prior {
        for (kk, l) in ls.iter().enumerate() {
            nll -= p.log_pdf(*l);
            grad[kk] -= p.dlog_pdf_dlogx(*l);
        }
    }

    (nll, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space_1d() -> SearchSpace {
        SearchSpace::builder().integer("x", 0, 20).build().unwrap()
    }

    fn cfg_x(s: &SearchSpace, x: i64) -> Configuration {
        s.configuration(&[("x", ParamValue::Int(x))]).unwrap()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let s = space_1d();
        let configs: Vec<_> = [0, 3, 7, 12, 20].iter().map(|&x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = configs
            .iter()
            .map(|c| (c.value("x").as_f64() / 5.0).sin())
            .collect();
        let inputs: Vec<ModelInput> = configs
            .iter()
            .map(|c| ModelInput::from_config(&s, c, true))
            .collect();
        let n = inputs.len();
        let mut d2 = vec![Matrix::zeros(n, n)];
        for i in 0..n {
            for j in 0..n {
                d2[0][(i, j)] = inputs[i].dim_dist2(&inputs[j], 0, PermMetric::Spearman);
            }
        }
        let ym = mean(&y);
        let ysd = std_dev(&y);
        let ys: Vec<f64> = y.iter().map(|v| (v - ym) / ysd).collect();
        let prior = GammaPrior::default();

        let theta = vec![(0.4f64).ln(), (0.9f64).ln(), (1e-3f64).ln()];
        let (f0, g) = neg_log_posterior(&theta, &d2, &ys, Some(&prior));
        assert!(f0.is_finite());
        let h = 1e-6;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += h;
            let (fp, _) = neg_log_posterior(&tp, &d2, &ys, Some(&prior));
            let mut tm = theta.clone();
            tm[k] -= h;
            let (fm, _) = neg_log_posterior(&tm, &d2, &ys, Some(&prior));
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - g[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "grad[{k}]: analytic {} vs fd {fd}",
                g[k]
            );
        }
    }

    #[test]
    fn interpolates_training_data_with_low_noise() {
        let s = space_1d();
        let configs: Vec<_> = (0..=20).step_by(2).map(|x| cfg_x(&s, x)).collect();
        let y: Vec<f64> = configs
            .iter()
            .map(|c| {
                let x = c.value("x").as_f64();
                (x - 10.0) * (x - 10.0) / 20.0
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        for (c, yi) in configs.iter().zip(&y) {
            let (m, v) = gp.predict(c);
            assert!((m - yi).abs() < 0.35, "mean {m} vs {yi}");
            assert!(v >= 0.0);
        }
        // Prediction between points should also be sane (smooth function).
        let (m, _) = gp.predict(&cfg_x(&s, 9));
        assert!((m - 0.05).abs() < 1.0, "interpolated mean {m}");
    }

    #[test]
    fn variance_grows_away_from_data() {
        let s = SearchSpace::builder().integer("x", 0, 100).build().unwrap();
        let configs: Vec<_> = [0i64, 2, 4, 6, 8, 10].iter().map(|&x| {
            s.configuration(&[("x", ParamValue::Int(x))]).unwrap()
        }).collect();
        let y = vec![1.0, 1.1, 0.9, 1.05, 0.95, 1.0];
        let mut rng = StdRng::seed_from_u64(3);
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        let (_, v_near) = gp.predict(&s.configuration(&[("x", ParamValue::Int(5))]).unwrap());
        let (_, v_far) = gp.predict(&s.configuration(&[("x", ParamValue::Int(90))]).unwrap());
        assert!(v_far > v_near, "far {v_far} vs near {v_near}");
    }

    #[test]
    fn handles_single_point_and_constant_outputs() {
        let s = space_1d();
        let mut rng = StdRng::seed_from_u64(4);
        let one = vec![cfg_x(&s, 5)];
        let gp = GaussianProcess::fit(&s, &one, &[3.0], &GpOptions::default(), &mut rng).unwrap();
        let (m, v) = gp.predict(&cfg_x(&s, 5));
        assert!((m - 3.0).abs() < 0.5);
        assert!(v >= 0.0);

        let configs: Vec<_> = (0..5).map(|x| cfg_x(&s, x * 4)).collect();
        let gp =
            GaussianProcess::fit(&s, &configs, &[2.0; 5], &GpOptions::default(), &mut rng).unwrap();
        let (m, _) = gp.predict(&cfg_x(&s, 3));
        assert!((m - 2.0).abs() < 0.5, "constant mean {m}");
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let s = space_1d();
        let mut rng = StdRng::seed_from_u64(5);
        let configs = vec![cfg_x(&s, 5), cfg_x(&s, 5), cfg_x(&s, 9)];
        let y = vec![1.0, 1.2, 2.0];
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        let (m, _) = gp.predict(&cfg_x(&s, 5));
        assert!((m - 1.1).abs() < 0.4, "noisy duplicate mean {m}");
    }

    #[test]
    fn empty_fit_is_error() {
        let s = space_1d();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(GaussianProcess::fit(&s, &[], &[], &GpOptions::default(), &mut rng).is_err());
    }

    #[test]
    fn mixed_space_with_permutation_fits() {
        let s = SearchSpace::builder()
            .ordinal_log("tile", vec![1.0, 2.0, 4.0, 8.0])
            .categorical("m", vec!["a", "b"])
            .permutation("p", 3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut configs = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let cfg = s.sample_dense(&mut rng);
            // Synthetic objective touching every type.
            let t = cfg.value("tile").as_f64().log2();
            let c = if cfg.value("m").as_str() == "a" { 0.0 } else { 1.0 };
            let p0 = cfg.value("p").as_permutation()[0] as f64;
            y.push(t + c + 0.5 * p0 + (i as f64) * 0.01);
            configs.push(cfg);
        }
        let gp = GaussianProcess::fit(&s, &configs, &y, &GpOptions::default(), &mut rng).unwrap();
        assert_eq!(gp.lengthscales().len(), 3);
        let (m, v) = gp.predict(&configs[0]);
        assert!(m.is_finite() && v.is_finite() && v >= 0.0);
    }

    #[test]
    fn matern_kernel_basics() {
        assert!((matern52(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!(matern52(1.0, 1.0) < 1.0);
        assert!(matern52(5.0, 1.0) < matern52(1.0, 1.0));
        assert!(matern52(50.0, 1.0) >= 0.0);
    }
}
