//! Random forests: the hidden-constraint feasibility classifier of Sec. 4.2
//! and the alternative value surrogate used in the Fig. 8 comparison (and by
//! the Ytopt baseline).
//!
//! ```
//! use baco::space::{ParamValue, SearchSpace};
//! use baco::surrogate::{RandomForestClassifier, RfOptions};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder().integer("x", 0, 31).build()?;
//! let cfg = |x: i64| space.configuration(&[("x", ParamValue::Int(x))]).unwrap();
//! // Feasible iff x < 16.
//! let configs: Vec<_> = (0..32).map(cfg).collect();
//! let labels: Vec<bool> = (0..32).map(|x| x < 16).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let clf = RandomForestClassifier::fit(&space, &configs, &labels, &RfOptions::default(), &mut rng)?;
//! assert!(clf.predict_proba(&space, &cfg(2)) > clf.predict_proba(&space, &cfg(30)));
//! # Ok::<(), baco::Error>(())
//! ```

mod tree;

use self::tree::{DecisionTree, TreeOptions};
use super::features::ModelInput;
use crate::space::{Configuration, SearchSpace};
use crate::{Error, Result};
use rand::Rng;

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct RfOptions {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Bootstrap-resample the training set per tree.
    pub bootstrap: bool,
}

impl Default for RfOptions {
    fn default() -> Self {
        RfOptions {
            n_trees: 40,
            max_depth: 14,
            min_samples_leaf: 1,
            bootstrap: true,
        }
    }
}

fn fit_forest<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    opts: &RfOptions,
    rng: &mut R,
) -> Result<Vec<DecisionTree>> {
    if x.is_empty() || x.len() != y.len() {
        return Err(Error::InvalidConfig(format!(
            "random forest fit needs matching nonempty data: {} rows, {} labels",
            x.len(),
            y.len()
        )));
    }
    let n = x.len();
    let n_features = x[0].len().max(1);
    let mtry = (n_features as f64).sqrt().ceil() as usize;
    let topts = TreeOptions {
        max_depth: opts.max_depth,
        min_samples_leaf: opts.min_samples_leaf,
        features_per_split: mtry.max(1),
    };
    let mut trees = Vec::with_capacity(opts.n_trees);
    for _ in 0..opts.n_trees.max(1) {
        let idx: Vec<usize> = if opts.bootstrap {
            (0..n).map(|_| rng.gen_range(0..n)).collect()
        } else {
            (0..n).collect()
        };
        trees.push(DecisionTree::fit(x, y, &idx, &topts, rng));
    }
    Ok(trees)
}

fn forest_predict(trees: &[DecisionTree], features: &[f64]) -> (f64, f64) {
    let preds: Vec<f64> = trees.iter().map(|t| t.predict(features)).collect();
    let mean = preds.iter().sum::<f64>() / preds.len() as f64;
    let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
    (mean, var)
}

/// A random-forest regressor over configurations. Prediction variance is the
/// spread across trees, giving the uncertainty estimate BO needs.
#[derive(Debug)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTree>,
    use_transforms: bool,
}

impl RandomForestRegressor {
    /// Fits the forest to `(configs, y)`.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on empty or mismatched data.
    pub fn fit<R: Rng + ?Sized>(
        space: &SearchSpace,
        configs: &[Configuration],
        y: &[f64],
        opts: &RfOptions,
        rng: &mut R,
    ) -> Result<Self> {
        let x: Vec<Vec<f64>> = configs
            .iter()
            .map(|c| ModelInput::from_config(space, c, true).flat_features())
            .collect();
        Ok(RandomForestRegressor {
            trees: fit_forest(&x, y, opts, rng)?,
            use_transforms: true,
        })
    }

    /// Posterior mean and across-tree variance at `cfg`.
    pub fn predict_config(&self, space: &SearchSpace, cfg: &Configuration) -> (f64, f64) {
        let f = ModelInput::from_config(space, cfg, self.use_transforms).flat_features();
        forest_predict(&self.trees, &f)
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees (never true after a successful fit).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// The feasibility classifier for hidden constraints: predicts the
/// probability that a configuration evaluates successfully.
#[derive(Debug)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTree>,
    use_transforms: bool,
}

impl RandomForestClassifier {
    /// Fits the classifier to `(configs, feasible)` labels.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on empty or mismatched data.
    pub fn fit<R: Rng + ?Sized>(
        space: &SearchSpace,
        configs: &[Configuration],
        feasible: &[bool],
        opts: &RfOptions,
        rng: &mut R,
    ) -> Result<Self> {
        let x: Vec<Vec<f64>> = configs
            .iter()
            .map(|c| ModelInput::from_config(space, c, true).flat_features())
            .collect();
        let y: Vec<f64> = feasible.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        Ok(RandomForestClassifier {
            trees: fit_forest(&x, &y, opts, rng)?,
            use_transforms: true,
        })
    }

    /// Probability of feasibility at `cfg` (mean leaf probability across
    /// trees).
    pub fn predict_proba(&self, space: &SearchSpace, cfg: &Configuration) -> f64 {
        let f = ModelInput::from_config(space, cfg, self.use_transforms).flat_features();
        forest_predict(&self.trees, &f).0.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .integer("x", 0, 31)
            .categorical("m", vec!["a", "b"])
            .build()
            .unwrap()
    }

    fn cfg(s: &SearchSpace, x: i64, m: &str) -> Configuration {
        s.configuration(&[("x", ParamValue::Int(x)), ("m", ParamValue::Categorical(m.into()))])
            .unwrap()
    }

    #[test]
    fn regressor_learns_piecewise_signal() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        let mut configs = Vec::new();
        let mut y = Vec::new();
        for x in 0..32 {
            for m in ["a", "b"] {
                let c = cfg(&s, x, m);
                let v = if x < 16 { 1.0 } else { 4.0 } + if m == "b" { 10.0 } else { 0.0 };
                configs.push(c);
                y.push(v);
            }
        }
        let rf =
            RandomForestRegressor::fit(&s, &configs, &y, &RfOptions::default(), &mut rng).unwrap();
        let (m1, _) = rf.predict_config(&s, &cfg(&s, 3, "a"));
        let (m2, _) = rf.predict_config(&s, &cfg(&s, 30, "b"));
        assert!((m1 - 1.0).abs() < 0.8, "{m1}");
        assert!((m2 - 14.0).abs() < 1.5, "{m2}");
    }

    #[test]
    fn variance_positive_out_of_sample() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let configs: Vec<_> = (0..8).map(|x| cfg(&s, x * 4, "a")).collect();
        let y: Vec<f64> = (0..8).map(|x| (x as f64).sin() * 3.0).collect();
        let rf =
            RandomForestRegressor::fit(&s, &configs, &y, &RfOptions::default(), &mut rng).unwrap();
        let (_, v) = rf.predict_config(&s, &cfg(&s, 13, "b"));
        assert!(v >= 0.0);
    }

    #[test]
    fn classifier_learns_feasibility_boundary() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let mut configs = Vec::new();
        let mut labels = Vec::new();
        for x in 0..32 {
            let c = cfg(&s, x, "a");
            configs.push(c);
            labels.push(x < 20); // feasible below 20
        }
        let rf = RandomForestClassifier::fit(&s, &configs, &labels, &RfOptions::default(), &mut rng)
            .unwrap();
        assert!(rf.predict_proba(&s, &cfg(&s, 5, "a")) > 0.8);
        assert!(rf.predict_proba(&s, &cfg(&s, 29, "a")) < 0.2);
    }

    #[test]
    fn empty_fit_is_error() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(RandomForestRegressor::fit(&s, &[], &[], &RfOptions::default(), &mut rng).is_err());
        assert!(
            RandomForestClassifier::fit(&s, &[], &[], &RfOptions::default(), &mut rng).is_err()
        );
    }

    #[test]
    fn single_class_classifier_is_constant() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let configs: Vec<_> = (0..6).map(|x| cfg(&s, x, "a")).collect();
        let rf = RandomForestClassifier::fit(
            &s,
            &configs,
            &[true; 6],
            &RfOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(rf.predict_proba(&s, &cfg(&s, 31, "b")), 1.0);
    }
}
