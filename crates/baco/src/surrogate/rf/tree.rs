use rand::Rng;

/// A CART-style decision tree over flat numeric feature vectors, trained by
/// variance reduction. Works both for regression (arbitrary labels) and for
/// binary classification (0/1 labels; leaf mean = class probability).
#[derive(Debug, Clone)]
pub(crate) struct DecisionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f64,
    },
}

/// Per-tree hyperparameters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TreeOptions {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Number of candidate features per split (`mtry`).
    pub features_per_split: usize,
}

impl DecisionTree {
    /// Fits a tree on the rows of `x` (indices `idx`) with labels `y`.
    pub(crate) fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        opts: &TreeOptions,
        rng: &mut R,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut scratch: Vec<usize> = idx.to_vec();
        build(x, y, &mut scratch, 0, opts, rng, &mut nodes);
        DecisionTree { nodes }
    }

    /// Predicts a single feature vector.
    pub(crate) fn predict(&self, features: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if features[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn mean_of(y: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn sse_of(y: &[f64], idx: &[usize]) -> f64 {
    let m = mean_of(y, idx);
    idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
}

/// Recursively builds nodes; returns the index of the created node.
fn build<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &mut [usize],
    depth: usize,
    opts: &TreeOptions,
    rng: &mut R,
    nodes: &mut Vec<Node>,
) -> u32 {
    let node_id = nodes.len() as u32;
    let leaf_value = mean_of(y, idx);
    // Stopping conditions.
    let pure = idx.iter().all(|&i| y[i] == y[idx[0]]);
    if depth >= opts.max_depth || idx.len() < 2 * opts.min_samples_leaf || pure {
        nodes.push(Node::Leaf { value: leaf_value });
        return node_id;
    }

    let n_features = x[idx[0]].len();
    let mut feats: Vec<usize> = (0..n_features).collect();
    // Sample `features_per_split` features without replacement.
    for i in 0..feats.len() {
        let j = rng.gen_range(i..feats.len());
        feats.swap(i, j);
    }
    feats.truncate(opts.features_per_split.clamp(1, n_features));

    let parent_sse = sse_of(y, idx);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for &f in &feats {
        // Distinct sorted feature values among the samples.
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let thr = 0.5 * (w[0] + w[1]);
            let (mut ln, mut ls, mut ls2) = (0usize, 0.0f64, 0.0f64);
            let (mut rn, mut rs, mut rs2) = (0usize, 0.0f64, 0.0f64);
            for &i in idx.iter() {
                if x[i][f] <= thr {
                    ln += 1;
                    ls += y[i];
                    ls2 += y[i] * y[i];
                } else {
                    rn += 1;
                    rs += y[i];
                    rs2 += y[i] * y[i];
                }
            }
            if ln < opts.min_samples_leaf || rn < opts.min_samples_leaf {
                continue;
            }
            let sse = (ls2 - ls * ls / ln as f64) + (rs2 - rs * rs / rn as f64);
            let gain = parent_sse - sse;
            if best.is_none_or(|(g, _, _)| gain > g) && gain > 1e-12 {
                best = Some((gain, f, thr));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        nodes.push(Node::Leaf { value: leaf_value });
        return node_id;
    };

    // Partition indices in place.
    let mut lhs: Vec<usize> = Vec::new();
    let mut rhs: Vec<usize> = Vec::new();
    for &i in idx.iter() {
        if x[i][feature] <= threshold {
            lhs.push(i);
        } else {
            rhs.push(i);
        }
    }

    nodes.push(Node::Split {
        feature,
        threshold,
        left: 0,
        right: 0,
    });
    let left = build(x, y, &mut lhs, depth + 1, opts, rng, nodes);
    let right = build(x, y, &mut rhs, depth + 1, opts, rng, nodes);
    if let Node::Split {
        left: l, right: r, ..
    } = &mut nodes[node_id as usize]
    {
        *l = left;
        *r = right;
    }
    node_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn opts() -> TreeOptions {
        TreeOptions {
            max_depth: 10,
            min_samples_leaf: 1,
            features_per_split: 2,
        }
    }

    #[test]
    fn fits_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 0.0]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let idx: Vec<usize> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let t = DecisionTree::fit(&x, &y, &idx, &opts(), &mut rng);
        assert_eq!(t.predict(&[3.0, 0.0]), 1.0);
        assert_eq!(t.predict(&[15.0, 0.0]), 5.0);
    }

    #[test]
    fn pure_labels_make_single_leaf() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![2.0; 5];
        let idx: Vec<usize> = (0..5).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let t = DecisionTree::fit(&x, &y, &idx, &opts(), &mut rng);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[99.0]), 2.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..64).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let shallow = TreeOptions {
            max_depth: 1,
            min_samples_leaf: 1,
            features_per_split: 1,
        };
        let t = DecisionTree::fit(&x, &y, &idx, &shallow, &mut rng);
        // Depth 1 → at most 3 nodes (root + 2 leaves).
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn binary_labels_give_probabilities() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![(i % 2) as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let idx: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let t = DecisionTree::fit(&x, &y, &idx, &opts(), &mut rng);
        assert_eq!(t.predict(&[0.0]), 0.0);
        assert_eq!(t.predict(&[1.0]), 1.0);
    }
}
