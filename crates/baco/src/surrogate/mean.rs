//! Pluggable GP prior-mean functions.
//!
//! The Gaussian process fits the *residual* process `r(x) = y(x) − m(x)`
//! against a mean function `m` and adds `m(x)` back at prediction time, so a
//! good prior mean (e.g. one learned from archived tuning runs — see
//! [`crate::journal::corpus`] and `BacoOptions::transfer`) lets the surrogate
//! start informed instead of flat. [`ZeroMean`] recovers the classic
//! zero-mean GP: residuals equal the raw targets and every code path is
//! byte-identical to a stack with no mean function at all.
//!
//! Mean functions are evaluated on [`Configuration`]s (not featurized
//! [`ModelInput`](super::ModelInput)s) so implementations can use the full
//! typed parameter values; the `ModelInput`-based prediction entry points of
//! [`GaussianProcess`](super::GaussianProcess) therefore stay in residual
//! space (documented per method).

use crate::space::{Configuration, SearchSpace};
use std::fmt::Debug;

/// A prior mean `m(x)` for the GP surrogate.
///
/// Implementations must be deterministic: the same configuration always maps
/// to the same value, and [`MeanFn::digest`] must change whenever the
/// function's predictions could — it fingerprints the mean inside
/// [`GpCache`](super::GpCache) so cached factorizations are never reused
/// across different mean functions.
pub trait MeanFn: Debug + Send + Sync {
    /// The prior mean at `cfg`, on the same (transformed) scale as the
    /// targets the GP is fitted on.
    fn mean(&self, space: &SearchSpace, cfg: &Configuration) -> f64;

    /// A stable fingerprint of this function's behavior. [`ZeroMean`] is
    /// pinned to `0`; any non-trivial mean must return something else.
    fn digest(&self) -> u64;
}

/// The zero mean: the GP models the targets directly. This is the default
/// and is bit-identical to the pre-`MeanFn` surrogate stack.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroMean;

/// The digest every zero-behaving mean reports; caches treat it as "no mean".
pub const ZERO_MEAN_DIGEST: u64 = 0;

impl MeanFn for ZeroMean {
    fn mean(&self, _space: &SearchSpace, _cfg: &Configuration) -> f64 {
        0.0
    }

    fn digest(&self) -> u64 {
        ZERO_MEAN_DIGEST
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamValue;

    #[test]
    fn zero_mean_is_zero_everywhere_with_digest_zero() {
        let space = SearchSpace::builder().integer("x", 0, 7).build().unwrap();
        let cfg = space.configuration(&[("x", ParamValue::Int(3))]).unwrap();
        assert_eq!(ZeroMean.mean(&space, &cfg), 0.0);
        assert_eq!(ZeroMean.digest(), ZERO_MEAN_DIGEST);
    }
}
