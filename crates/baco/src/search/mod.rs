//! Search procedures: the initial design-of-experiments phase and the
//! multi-start local search that optimizes the acquisition function
//! (Sec. 3.3: "Neighbours are defined as all configurations that can be
//! reached by modifying a single parameter").
//!
//! All searches score candidates through *batched* closures
//! (`FnMut(&[Configuration]) -> Vec<f64>`) so surrogates with a bulk
//! posterior path amortize their triangular solves, and all of them sample
//! from a [`FeasibleSampler`] — the CoT for fully discrete spaces — so every
//! candidate is known-constraint-feasible by construction.
//!
//! ```
//! use baco::search::{local_search, scalar_score, FeasibleSampler, LocalSearchOptions};
//! use baco::space::SearchSpace;
//! use rand::SeedableRng;
//! use std::collections::HashSet;
//!
//! let space = SearchSpace::builder()
//!     .integer("a", 0, 15)
//!     .integer("b", 0, 15)
//!     .known_constraint("a >= b")
//!     .build()?;
//! let sampler = FeasibleSampler::new(&space)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let best = local_search(
//!     &sampler,
//!     &mut rng,
//!     scalar_score(|c| -(c.value("a").as_f64() - 12.0).powi(2)),
//!     &LocalSearchOptions::default(),
//!     &HashSet::new(),
//! )
//! .unwrap();
//! assert_eq!(best.value("a").as_i64(), 12);
//! # Ok::<(), baco::Error>(())
//! ```

mod neighbors;

pub use neighbors::neighbors;

use crate::cot::ChainOfTrees;
use crate::space::{Configuration, SearchSpace};
use rand::Rng;
use std::collections::HashSet;

/// A feasible-configuration source: the CoT when the space is fully
/// discrete, otherwise rejection sampling against the known constraints.
#[derive(Debug)]
pub enum FeasibleSampler {
    /// Sampling / membership via the Chain-of-Trees.
    Cot(ChainOfTrees),
    /// Rejection sampling for spaces with continuous parameters.
    Rejection(SearchSpace),
}

impl FeasibleSampler {
    /// Builds the appropriate sampler for `space`.
    ///
    /// # Errors
    /// Propagates CoT construction failures (empty feasible set, blow-up).
    pub fn new(space: &SearchSpace) -> crate::Result<Self> {
        if space.is_fully_discrete() {
            Ok(FeasibleSampler::Cot(ChainOfTrees::build(space)?))
        } else {
            Ok(FeasibleSampler::Rejection(space.clone()))
        }
    }

    /// The underlying space.
    pub fn space(&self) -> &SearchSpace {
        match self {
            FeasibleSampler::Cot(c) => c.space(),
            FeasibleSampler::Rejection(s) => s,
        }
    }

    /// The CoT, when one was built.
    pub fn cot(&self) -> Option<&ChainOfTrees> {
        match self {
            FeasibleSampler::Cot(c) => Some(c),
            FeasibleSampler::Rejection(_) => None,
        }
    }

    /// Samples one feasible configuration (uniform over leaves for the CoT).
    ///
    /// # Panics
    /// Panics if rejection sampling fails 10 000 times in a row (degenerate
    /// constraint set on a continuous space).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        match self {
            FeasibleSampler::Cot(c) => c.sample_uniform(rng),
            FeasibleSampler::Rejection(s) => {
                for _ in 0..10_000 {
                    let cfg = s.sample_dense(rng);
                    if s.satisfies_known(&cfg).unwrap_or(false) {
                        return cfg;
                    }
                }
                panic!("rejection sampling failed: feasible set too sparse");
            }
        }
    }

    /// Whether `cfg` satisfies the known constraints.
    pub fn contains(&self, cfg: &Configuration) -> bool {
        match self {
            FeasibleSampler::Cot(c) => c.contains(cfg),
            FeasibleSampler::Rejection(s) => s.satisfies_known(cfg).unwrap_or(false),
        }
    }

    /// Draws up to `n` **distinct** feasible configurations, excluding
    /// anything in `excluded` — the batch-aware de-duplicating sampler behind
    /// the DoE phase and the batched proposer's random fills (a round of `q`
    /// proposals must be `q` *different* feasible points). May return fewer
    /// than `n` when the unexcluded feasible set is nearly exhausted.
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        excluded: &HashSet<Configuration>,
    ) -> Vec<Configuration> {
        let mut out = Vec::with_capacity(n);
        let mut local: HashSet<Configuration> = HashSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < 200 * n.max(1) {
            attempts += 1;
            let cfg = self.sample(rng);
            if excluded.contains(&cfg) || local.contains(&cfg) {
                continue;
            }
            local.insert(cfg.clone());
            out.push(cfg);
        }
        out
    }
}

/// Draws `n` distinct feasible configurations for the initial phase,
/// excluding anything in `seen`. May return fewer if the feasible set is
/// nearly exhausted. (A thin alias for
/// [`FeasibleSampler::sample_batch`], kept for the DoE call sites.)
pub fn doe_sample<R: Rng + ?Sized>(
    sampler: &FeasibleSampler,
    rng: &mut R,
    n: usize,
    seen: &HashSet<Configuration>,
) -> Vec<Configuration> {
    sampler.sample_batch(rng, n, seen)
}

/// Options for [`local_search`].
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchOptions {
    /// Random candidates scored before the climb.
    pub n_candidates: usize,
    /// How many of the best candidates seed hill climbs.
    pub n_starts: usize,
    /// Maximum climb steps per start.
    pub max_steps: usize,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            n_candidates: 500,
            n_starts: 8,
            max_steps: 60,
        }
    }
}

/// Multi-start local search maximizing a *batched* score, excluding
/// configurations in `seen`. Returns the best configuration found, or `None`
/// when every candidate was already evaluated or scored `-∞`.
///
/// `score_batch` receives whole candidate slices — the initial random pool in
/// one call, then every feasible unseen neighborhood of a hill climb in one
/// call — and must return one score per candidate, in order. Surrogates with
/// a bulk prediction path (the GP's blocked posterior solve) make this
/// dramatically cheaper than per-candidate scoring; see
/// [`crate::surrogate::ValueModel::predict_batch`].
///
/// Candidates are sampled from the RNG *before* any scoring happens, and the
/// climb accepts exactly the neighbor the sequential scan would accept, so
/// the picked configuration is identical to the historical one-at-a-time
/// implementation whenever `score_batch` agrees with the scalar score.
pub fn local_search<R, F>(
    sampler: &FeasibleSampler,
    rng: &mut R,
    score_batch: F,
    opts: &LocalSearchOptions,
    seen: &HashSet<Configuration>,
) -> Option<Configuration>
where
    R: Rng + ?Sized,
    F: FnMut(&[Configuration]) -> Vec<f64>,
{
    local_search_in(sampler, rng, score_batch, opts, seen, None)
}

/// How many draws a region-restricted pool slot may spend looking for an
/// in-region candidate before settling for the best out-of-region draw —
/// bounded so a tiny or empty region can never starve proposal generation.
const REGION_ATTEMPTS: usize = 8;

/// [`local_search`] restricted to a candidate region: when `region` is set,
/// pool sampling retries a few times per slot for a configuration inside the
/// region (falling back to a global draw, so search never starves), and hill
/// climbs only traverse in-region neighbors. `None` is exactly
/// [`local_search`] — same candidates, same RNG consumption, bit for bit.
///
/// This is the trust-region hook of the budget-bounded surrogate mode (see
/// [`crate::surrogate::TrustRegion`]).
pub fn local_search_in<R, F>(
    sampler: &FeasibleSampler,
    rng: &mut R,
    mut score_batch: F,
    opts: &LocalSearchOptions,
    seen: &HashSet<Configuration>,
    region: Option<&dyn Fn(&Configuration) -> bool>,
) -> Option<Configuration>
where
    R: Rng + ?Sized,
    F: FnMut(&[Configuration]) -> Vec<f64>,
{
    let space = sampler.space().clone();
    let pool = sample_pool(sampler, rng, opts.n_candidates, seen, region);
    let mut scored: Vec<(f64, Configuration)> = score_batch(&pool)
        .into_iter()
        .zip(pool)
        .filter(|(s, _)| *s > f64::NEG_INFINITY)
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    scored.truncate(opts.n_starts.max(1));

    let mut best: Option<(f64, Configuration)> = None;
    let mut nbs: Vec<Configuration> = Vec::new();
    for (s0, start) in scored {
        let mut cur = start;
        let mut cur_score = s0;
        for _ in 0..opts.max_steps {
            nbs.clear();
            nbs.extend(neighbors(&space, &cur).into_iter().filter(|nb| {
                sampler.contains(nb)
                    && !seen.contains(nb)
                    && region.is_none_or(|inside| inside(nb))
            }));
            if nbs.is_empty() {
                break;
            }
            // Sequential accept sweep over the batch scores: keeps the climb
            // step-for-step identical to the unbatched implementation.
            let mut improved = false;
            let mut accepted: Option<usize> = None;
            for (i, s) in score_batch(&nbs).into_iter().enumerate() {
                if s > cur_score {
                    accepted = Some(i);
                    cur_score = s;
                    improved = true;
                }
            }
            if let Some(i) = accepted {
                cur = nbs.swap_remove(i);
            }
            if !improved {
                break;
            }
        }
        if best.as_ref().is_none_or(|(b, _)| cur_score > *b) {
            best = Some((cur_score, cur));
        }
    }
    best.map(|(_, c)| c)
}

/// Draws the random candidate pool shared by [`local_search_in`] and
/// [`random_search_in`]: `n` slots, each filled by an unseen feasible draw.
///
/// Without a region this is exactly the historical loop — one RNG draw per
/// slot, dropped when already seen — so unbudgeted runs keep their bitwise
/// trajectories. With a region, each slot retries up to [`REGION_ATTEMPTS`]
/// times for an unseen in-region candidate and otherwise keeps its first
/// unseen draw, so a shrunken trust region biases the pool without ever
/// starving it.
fn sample_pool<R: Rng + ?Sized>(
    sampler: &FeasibleSampler,
    rng: &mut R,
    n: usize,
    seen: &HashSet<Configuration>,
    region: Option<&dyn Fn(&Configuration) -> bool>,
) -> Vec<Configuration> {
    let mut pool: Vec<Configuration> = Vec::with_capacity(n);
    match region {
        None => {
            for _ in 0..n {
                let cfg = sampler.sample(rng);
                if !seen.contains(&cfg) {
                    pool.push(cfg);
                }
            }
        }
        Some(inside) => {
            for _ in 0..n {
                let mut fallback: Option<Configuration> = None;
                for _ in 0..REGION_ATTEMPTS {
                    let cfg = sampler.sample(rng);
                    if seen.contains(&cfg) {
                        continue;
                    }
                    if inside(&cfg) {
                        fallback = Some(cfg);
                        break;
                    }
                    if fallback.is_none() {
                        fallback = Some(cfg);
                    }
                }
                if let Some(cfg) = fallback {
                    pool.push(cfg);
                }
            }
        }
    }
    pool
}

/// Picks the best of `n` random feasible candidates, scored as one batch
/// (the degraded acquisition optimizer used by the `BaCO--` ablation).
pub fn random_search<R, F>(
    sampler: &FeasibleSampler,
    rng: &mut R,
    score_batch: F,
    n: usize,
    seen: &HashSet<Configuration>,
) -> Option<Configuration>
where
    R: Rng + ?Sized,
    F: FnMut(&[Configuration]) -> Vec<f64>,
{
    random_search_in(sampler, rng, score_batch, n, seen, None)
}

/// [`random_search`] with an optional candidate region; see
/// [`local_search_in`] for the region semantics. `None` is exactly
/// [`random_search`], bit for bit.
pub fn random_search_in<R, F>(
    sampler: &FeasibleSampler,
    rng: &mut R,
    mut score_batch: F,
    n: usize,
    seen: &HashSet<Configuration>,
    region: Option<&dyn Fn(&Configuration) -> bool>,
) -> Option<Configuration>
where
    R: Rng + ?Sized,
    F: FnMut(&[Configuration]) -> Vec<f64>,
{
    let mut pool = sample_pool(sampler, rng, n, seen, region);
    let mut best: Option<(f64, usize)> = None;
    for (i, s) in score_batch(&pool).into_iter().enumerate() {
        // Strict `>` keeps the first maximum, like the sequential scan did.
        if s > f64::NEG_INFINITY && best.as_ref().is_none_or(|(b, _)| s > *b) {
            best = Some((s, i));
        }
    }
    best.map(|(_, i)| pool.swap_remove(i))
}

/// Adapts a scalar scoring closure to the batched signature of
/// [`local_search`] / [`random_search`] (tests and simple callers).
pub fn scalar_score<F: FnMut(&Configuration) -> f64>(
    mut score: F,
) -> impl FnMut(&[Configuration]) -> Vec<f64> {
    move |cfgs: &[Configuration]| cfgs.iter().map(&mut score).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .integer("a", 0, 15)
            .integer("b", 0, 15)
            .known_constraint("a >= b")
            .build()
            .unwrap()
    }

    #[test]
    fn doe_returns_distinct_feasible() {
        let s = space();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let got = doe_sample(&sampler, &mut rng, 20, &HashSet::new());
        assert_eq!(got.len(), 20);
        let uniq: HashSet<_> = got.iter().cloned().collect();
        assert_eq!(uniq.len(), 20);
        for c in &got {
            assert!(c.value("a").as_i64() >= c.value("b").as_i64());
        }
    }

    #[test]
    fn doe_respects_seen_set() {
        let s = SearchSpace::builder().integer("a", 0, 3).build().unwrap();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = HashSet::new();
        seen.insert(s.configuration(&[("a", ParamValue::Int(0))]).unwrap());
        seen.insert(s.configuration(&[("a", ParamValue::Int(1))]).unwrap());
        let got = doe_sample(&sampler, &mut rng, 4, &seen);
        assert_eq!(got.len(), 2, "only 2 configs remain unseen");
    }

    #[test]
    fn local_search_climbs_to_optimum() {
        let s = space();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Unimodal score peaked at (a, b) = (12, 7).
        let score = |c: &Configuration| {
            let a = c.value("a").as_f64();
            let b = c.value("b").as_f64();
            -((a - 12.0).powi(2) + (b - 7.0).powi(2))
        };
        let opts = LocalSearchOptions {
            n_candidates: 30,
            n_starts: 4,
            max_steps: 50,
        };
        let best = local_search(&sampler, &mut rng, scalar_score(score), &opts, &HashSet::new()).unwrap();
        assert_eq!(best.value("a").as_i64(), 12);
        assert_eq!(best.value("b").as_i64(), 7);
    }

    #[test]
    fn local_search_stays_feasible() {
        let s = space();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // Score pulls towards the infeasible corner (a=0, b=15).
        let score = |c: &Configuration| {
            let a = c.value("a").as_f64();
            let b = c.value("b").as_f64();
            -a + b
        };
        let best = local_search(
            &sampler,
            &mut rng,
            scalar_score(score),
            &LocalSearchOptions::default(),
            &HashSet::new(),
        )
        .unwrap();
        // Feasible optimum on a >= b is the diagonal a == b.
        assert_eq!(best.value("a").as_i64(), best.value("b").as_i64());
    }

    #[test]
    fn local_search_excludes_seen() {
        let s = SearchSpace::builder().integer("a", 0, 2).build().unwrap();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = HashSet::new();
        // The optimum a=2 is already evaluated.
        seen.insert(s.configuration(&[("a", ParamValue::Int(2))]).unwrap());
        let best = local_search(
            &sampler,
            &mut rng,
            scalar_score(|c| c.value("a").as_f64()),
            &LocalSearchOptions::default(),
            &seen,
        )
        .unwrap();
        assert_eq!(best.value("a").as_i64(), 1);
    }

    #[test]
    fn region_restricted_search_biases_the_pool_into_the_region() {
        let s = space();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        // A constant score makes the pick purely pool-order driven: the first
        // surviving candidate wins, and with a region every slot retries until
        // it lands inside, so the winner must be in-region.
        let inside = |c: &Configuration| c.value("a").as_i64() >= 8;
        let best = random_search_in(
            &sampler,
            &mut rng,
            scalar_score(|_| 0.0),
            64,
            &HashSet::new(),
            Some(&inside),
        )
        .unwrap();
        assert!(inside(&best));
    }

    #[test]
    fn empty_region_never_starves_search() {
        let s = space();
        let sampler = FeasibleSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        // A region that rejects everything must degrade to global draws, not
        // return an empty pool: the fallback keeps each slot's first unseen
        // draw.
        let nothing = |_: &Configuration| false;
        let best = local_search_in(
            &sampler,
            &mut rng,
            scalar_score(|c| c.value("a").as_f64()),
            &LocalSearchOptions::default(),
            &HashSet::new(),
            Some(&nothing),
        );
        assert!(best.is_some());
    }

    #[test]
    fn rejection_sampler_for_continuous_spaces() {
        let s = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .integer("k", 0, 9)
            .build()
            .unwrap();
        let sampler = FeasibleSampler::new(&s).unwrap();
        assert!(sampler.cot().is_none());
        let mut rng = StdRng::seed_from_u64(6);
        let c = sampler.sample(&mut rng);
        assert!(sampler.contains(&c));
    }
}
