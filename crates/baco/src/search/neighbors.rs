use crate::space::{CVal, Configuration, ParamKind, SearchSpace};

/// All configurations reachable from `cfg` by modifying a single parameter
/// (Sec. 3.3: "all configurations that can be reached by modifying a single
/// parameter"):
///
/// * integer/ordinal/categorical — every other domain value (not just ±1:
///   constraint lattices like `(a+b) % 3 == 0` have no feasible unit steps,
///   so the full single-parameter neighborhood is required for the local
///   search to move at all);
/// * permutation — every pairwise swap of two elements (the full `m!` set
///   would be exponential);
/// * real — multiplicative nudges of ±5 % and ±20 % of the range, clipped.
///
/// Known-constraint filtering is the caller's job (via CoT membership), so
/// neighbor generation stays cheap.
pub fn neighbors(space: &SearchSpace, cfg: &Configuration) -> Vec<Configuration> {
    let mut out = Vec::new();
    for (i, p) in space.params().iter().enumerate() {
        match p.kind() {
            ParamKind::Integer { .. }
            | ParamKind::Ordinal { .. }
            | ParamKind::Categorical { .. } => {
                let size = p.domain_size().expect("discrete");
                let cur = cfg.cval(i).idx();
                for v in 0..size {
                    if v != cur {
                        out.push(cfg.with_cval(i, CVal::Idx(v)));
                    }
                }
            }
            ParamKind::Permutation { len } => {
                let cur = crate::space::perm::unrank(cfg.cval(i).idx(), *len);
                for a in 0..*len {
                    for b in (a + 1)..*len {
                        let mut p2 = cur.clone();
                        p2.swap(a, b);
                        out.push(cfg.with_cval(i, CVal::Idx(crate::space::perm::rank(&p2))));
                    }
                }
            }
            ParamKind::Real { lo, hi } => {
                let cur = match cfg.cval(i) {
                    CVal::Real(v) => v,
                    CVal::Idx(_) => unreachable!("real param stores CVal::Real"),
                };
                let range = hi - lo;
                for step in [-0.2, -0.05, 0.05, 0.2] {
                    let v = (cur + step * range).clamp(*lo, *hi);
                    if v != cur {
                        out.push(cfg.with_cval(i, CVal::Real(v)));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};

    #[test]
    fn counts_by_type() {
        let s = SearchSpace::builder()
            .integer("i", 0, 9)        // 9 other values
            .categorical("c", vec!["a", "b", "z"]) // 2 others
            .permutation("p", 4)       // C(4,2) = 6 swaps
            .real("x", 0.0, 1.0)       // up to 4 nudges
            .build()
            .unwrap();
        let cfg = s
            .configuration(&[
                ("i", ParamValue::Int(5)),
                ("c", ParamValue::Categorical("a".into())),
                ("p", ParamValue::Permutation(vec![0, 1, 2, 3])),
                ("x", ParamValue::Real(0.5)),
            ])
            .unwrap();
        let nbs = neighbors(&s, &cfg);
        assert_eq!(nbs.len(), 9 + 2 + 6 + 4);
        // All differ from the origin in exactly one parameter.
        for nb in &nbs {
            let diff = (0..s.len())
                .filter(|&k| nb.value_at(k) != cfg.value_at(k))
                .count();
            assert_eq!(diff, 1, "{nb}");
        }
    }

    #[test]
    fn numeric_neighbors_cover_whole_domain() {
        let s = SearchSpace::builder().integer("i", 0, 9).build().unwrap();
        let lo = s.configuration(&[("i", ParamValue::Int(0))]).unwrap();
        let nbs = neighbors(&s, &lo);
        assert_eq!(nbs.len(), 9);
        let vals: std::collections::HashSet<i64> =
            nbs.iter().map(|c| c.value("i").as_i64()).collect();
        assert_eq!(vals.len(), 9);
        assert!(!vals.contains(&0));
    }

    #[test]
    fn real_neighbors_clamped_to_bounds() {
        let s = SearchSpace::builder().real("x", 0.0, 1.0).build().unwrap();
        let edge = s.configuration(&[("x", ParamValue::Real(0.99))]).unwrap();
        for nb in neighbors(&s, &edge) {
            let v = nb.value("x").as_f64();
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn permutation_swaps_are_all_distinct() {
        let s = SearchSpace::builder().permutation("p", 4).build().unwrap();
        let cfg = s
            .configuration(&[("p", ParamValue::Permutation(vec![2, 0, 3, 1]))])
            .unwrap();
        let nbs = neighbors(&s, &cfg);
        let uniq: std::collections::HashSet<_> = nbs.iter().cloned().collect();
        assert_eq!(uniq.len(), 6);
    }
}
