//! Raw `libc`-style syscall bindings for the event-driven server core.
//!
//! The container has no registry access, so instead of pulling in `libc`/
//! `mio` this module declares the handful of symbols the readiness loop
//! needs directly against the C library the Rust standard library already
//! links (the same approach as the vendored `rand`/`proptest` shims, one
//! layer lower). Everything here is Linux-only and gated accordingly; the
//! portable fallback front end lives in `server::mod` (`serve_blocking`).
//!
//! Errors are surfaced through [`std::io::Error::last_os_error`], which
//! reads `errno` without needing a binding of our own.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::c_int;

/// `epoll_event.events` flag: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` flag: error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` flag: hangup on the fd.
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` flag: the peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it to
/// 12 bytes; a plain `repr(C)` 16-byte layout would make `epoll_wait` write
/// entries at the wrong stride.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Readiness flag bits (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

/// A readiness poller over one epoll instance. Closes the epoll fd on drop.
#[derive(Debug)]
pub struct Poller {
    epfd: c_int,
}

impl Poller {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is the
        // only failure mode and is checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = epoll_event { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it. For
        // EPOLL_CTL_DEL the pointer is ignored on any kernel ≥ 2.6.9 but
        // passing a valid one is always allowed.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the watched event set of an already-registered `fd`.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stops watching `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready (or `timeout_ms`
    /// elapses; `-1` blocks indefinitely) and returns `(events, token)`
    /// pairs. Interruption by a signal is treated as zero events.
    pub fn wait(&self, buf: &mut Vec<(u32, u64)>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 256;
        let mut events = [epoll_event { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: the buffer pointer/capacity pair is valid for the call's
        // duration; the kernel writes at most MAX_EVENTS entries.
        let n = unsafe {
            epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms)
        };
        buf.clear();
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in events.iter().take(n as usize) {
            // Copy out of the (packed) struct before using the fields.
            let e = *ev;
            buf.push((e.events, e.data));
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Poller and closed exactly once.
        unsafe { close(self.epfd) };
    }
}

#[repr(C)]
struct rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

/// Best-effort raise of the process's open-file-descriptor limit to at
/// least `want`, returning the effective soft limit afterwards. Holding
/// 10k+ sockets (plus their client ends, in tests and benches) overruns
/// typical default soft limits; callers scale their connection counts to
/// whatever this returns rather than failing outright.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = rlimit { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: `lim` is a valid out-pointer for the duration of the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024; // POSIX-conservative guess when even getrlimit fails
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    // Raise the soft limit; root may raise the hard limit with it.
    let new = rlimit { rlim_cur: want.max(lim.rlim_cur), rlim_max: lim.rlim_max.max(want) };
    // SAFETY: `new` is a valid in-pointer for the duration of the call.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        return new.rlim_cur;
    }
    // Hard-limit raise refused (not root): settle for the hard limit.
    let capped = rlimit { rlim_cur: lim.rlim_max, rlim_max: lim.rlim_max };
    // SAFETY: as above.
    if lim.rlim_max > lim.rlim_cur && unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
        return capped.rlim_cur;
    }
    lim.rlim_cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::os::unix::prelude::AsRawFd;

    #[test]
    fn poller_reports_readability_with_tokens() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing written yet: a zero-timeout wait sees no events.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());

        a.write_all(b"x").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1, 42, "token must round-trip through the kernel");
        assert_ne!(events[0].0 & EPOLLIN, 0);

        // Drain, modify to write-interest, and observe writability.
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();
        poller.modify(b.as_raw_fd(), EPOLLOUT, 7).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|&(ev, tok)| tok == 7 && ev & EPOLLOUT != 0));

        poller.delete(b.as_raw_fd()).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deleted fds report nothing");
    }

    #[test]
    fn peer_hangup_is_visible() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 1).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(
            events
                .iter()
                .any(|&(ev, _)| ev & (EPOLLHUP | EPOLLRDHUP | EPOLLIN) != 0),
            "dropping the peer must wake the poller"
        );
    }

    #[test]
    fn nofile_limit_raise_is_monotone() {
        let before = raise_nofile_limit(0);
        assert!(before >= 1, "some limit must be readable");
        let after = raise_nofile_limit(before);
        assert!(after >= before);
    }
}
