//! The multi-tenant tuning server: many named [`Session`]s behind one
//! daemon, multiplexed over a line-delimited JSON protocol.
//!
//! # Why
//!
//! PR 2 and PR 3 built the two halves a tuning *service* needs — a
//! non-blocking batched [`Session`] and crash-safe journal persistence with
//! bitwise resume — but every run was still a single-process, single-client
//! affair. This module adds the missing layer:
//!
//! * **Sharded registry** (`registry`) — sessions live in an N-way sharded
//!   `RwLock<HashMap>` keyed by session id; requests against unrelated
//!   sessions never contend on a shared lock, requests against the same
//!   session serialize (so a concurrently-driven session stays
//!   deterministic).
//! * **Wire protocol** ([`proto`]) — `create_session` / `ask` /
//!   `suggest_batch` / `report` / `best` / `status` / `close` as one JSON
//!   object per line, reusing the journal's panic-free codec. Malformed
//!   input of any shape yields a typed error reply, never a panic and never
//!   a wedged session.
//! * **Durability** — with [`ServerOptions::journal_dir`] set, each session
//!   is backed by its own PR 3 journal (`<dir>/<session>.jsonl`). Kill the
//!   daemon — even mid-round — and a restarted server resumes every session
//!   via [`Session::resume`] semantics: `create_session` with
//!   `"resume": true` reconstructs history, RNG stream and DoE queue, so a
//!   sequential driver's continued trajectory is bit-for-bit identical to an
//!   uninterrupted run.
//!
//! Three front ends share the dispatch path: the in-process [`ServerHandle`]
//! (deterministic; what the test suites drive), the TCP listener
//! ([`ServerHandle::serve`] — on Linux an event-driven readiness loop
//! multiplexing 10k+ connections over epoll with pipelining, write-side
//! backpressure and typed `overloaded` load-shedding; elsewhere the
//! thread-per-connection fallback, also reachable explicitly as
//! [`ServerHandle::serve_blocking`]), and the `baco-cli serve` /
//! `baco-cli client` pair for end-to-end use against the `*-sim`
//! substrates. See `docs/ARCHITECTURE.md` for the connection state machine
//! and the backpressure/shedding policy.
//!
//! ```
//! use baco::server::{ServerHandle, ServerOptions};
//!
//! let srv = ServerHandle::new(ServerOptions::default());
//! let created = srv.handle_line(concat!(
//!     r#"{"op":"create_session","session":"t0","budget":3,"doe_samples":2,"seed":1,"#,
//!     r#""space":{"params":[{"name":"x","kind":"int","lo":"0","hi":"15"}],"constraints":[]}}"#,
//! ));
//! assert!(created.contains(r#""ok":true"#), "{created}");
//!
//! // Drive the session: ask for a proposal, report its objective.
//! let reply = srv.handle_line(r#"{"op":"ask","session":"t0"}"#);
//! let cfg = baco::journal::json::parse(&reply).unwrap().get("config").cloned().unwrap();
//! let report = baco::journal::json::Json::Obj(vec![
//!     ("op".into(), baco::journal::json::Json::Str("report".into())),
//!     ("session".into(), baco::journal::json::Json::Str("t0".into())),
//!     ("config".into(), cfg),
//!     ("value".into(), baco::journal::json::Json::Num(4.0)),
//! ]);
//! assert!(srv.handle_line(&report.to_line()).contains(r#""len":1"#));
//!
//! // Malformed input is a typed error, not a panic.
//! let err = srv.handle_line("{{{");
//! assert!(err.contains(r#""kind":"bad_request""#), "{err}");
//! ```

#[cfg(target_os = "linux")]
mod conn;
#[cfg(target_os = "linux")]
mod event;
mod registry;
#[cfg(target_os = "linux")]
mod sys;
pub mod proto;

#[cfg(target_os = "linux")]
pub use sys::raise_nofile_limit;

/// Portable stand-in for the Linux `RLIMIT_NOFILE` raiser: reports a
/// conservative limit and changes nothing.
#[cfg(not(target_os = "linux"))]
pub fn raise_nofile_limit(_want: u64) -> u64 {
    1024
}

use crate::journal::json::Json;
use crate::journal::{self, Journal};
use crate::space::SearchSpace;
use crate::tuner::{Baco, Evaluation, Session, SurrogateKind};
use crate::{Error, Result};
use proto::{Envelope, ErrorKind, Request, SessionSpec, WireError};
use registry::{lock_slot, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of a [`ServerHandle`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Registry shards (default 16). More shards, less cross-session
    /// contention on the id → session map.
    pub shards: usize,
    /// When set, every session is journaled to `<dir>/<session>.jsonl` and
    /// can be resumed across server restarts. `None` (default) keeps
    /// sessions in memory only.
    pub journal_dir: Option<PathBuf>,
    /// Maximum concurrently served TCP connections (default 8192). For the
    /// event-driven front end this is an fd-exhaustion guard: connections
    /// past it get one `overloaded` error line and are closed (request-level
    /// load is shed with [`ServerOptions::max_outstanding`] well before
    /// this trips). The blocking fallback front end treats it as its thread
    /// cap and answers `busy`, as before.
    pub max_connections: usize,
    /// Worker threads executing requests behind the event-driven front end
    /// (default 4). Per-connection order is independent of this: each
    /// connection has at most one request in flight at a time.
    pub workers: usize,
    /// Server-wide cap on accepted-but-unanswered requests (default 1024).
    /// Past it, newly framed requests are answered with a typed
    /// `overloaded` error — in request order, connection kept open — until
    /// the backlog drains. Shed load is retryable load.
    pub max_outstanding: usize,
    /// Per-connection cap on queued pipelined requests (default 128); past
    /// it further requests from that connection are shed as `overloaded`.
    pub max_pending_per_conn: usize,
    /// Write-buffer bound per connection in bytes (default 256 KiB). A
    /// connection buffering more replies than this stops being read until
    /// the buffer drains to half the bound (backpressure, not an error).
    pub write_buf_limit: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            shards: 16,
            journal_dir: None,
            max_connections: 8192,
            workers: 4,
            max_outstanding: 1024,
            max_pending_per_conn: 128,
            write_buf_limit: 256 * 1024,
        }
    }
}

/// One registered session: the [`Session`] plus the space its wire
/// configurations decode against.
#[derive(Debug)]
struct Tenant {
    session: Session,
    space: SearchSpace,
}

#[derive(Debug)]
struct Inner {
    registry: Registry<Tenant>,
    opts: ServerOptions,
}

/// The in-process face of the tuning server: a cheaply cloneable handle
/// whose [`ServerHandle::handle_line`] maps one request line to one reply
/// line. All front ends (tests, TCP, CLI) share this dispatch path, so
/// in-process tests exercise exactly what the daemon serves.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Creates an empty server.
    pub fn new(opts: ServerOptions) -> ServerHandle {
        ServerHandle {
            inner: Arc::new(Inner { registry: Registry::new(opts.shards), opts }),
        }
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.inner.registry.len()
    }

    /// Handles one request line, returning one reply line (no trailing
    /// newline). Never panics: malformed input of any shape yields a typed
    /// error reply (see [`proto`]).
    pub fn handle_line(&self, line: &str) -> String {
        match proto::parse_request(line) {
            Err(e) => proto::err_line(None, &e),
            Ok(Envelope { id, req }) => match self.dispatch(req) {
                Ok(fields) => proto::ok_line(id.as_ref(), fields),
                Err(e) => proto::err_line(id.as_ref(), &e),
            },
        }
    }

    fn dispatch(&self, req: Request) -> std::result::Result<Vec<(String, Json)>, WireError> {
        match req {
            Request::Create { session, spec } => self.create(&session, spec),
            Request::Ask { session } => self.with_tenant(&session, |t| {
                let cfg = t.session.ask().map_err(|e| WireError::from_error(&e))?;
                Ok(vec![(
                    "config".into(),
                    cfg.as_ref().map(journal::encode_config).unwrap_or(Json::Null),
                )])
            }),
            Request::SuggestBatch { session, q } => self.with_tenant(&session, |t| {
                let round = t.session.suggest_batch(q).map_err(|e| WireError::from_error(&e))?;
                Ok(vec![(
                    "configs".into(),
                    Json::Arr(round.iter().map(journal::encode_config).collect()),
                )])
            }),
            Request::Report { session, config, values, feasible } => {
                self.with_tenant(&session, |t| {
                    let cfg = journal::decode_config(&t.space, &config)
                        .map_err(|e| WireError::bad_request(format!("`config`: {e}")))?;
                    let m = t.session.tuner().options().objectives;
                    let eval = match (feasible, values) {
                        (true, Some(v)) => {
                            if v.len() != m {
                                return Err(WireError::bad_request(format!(
                                    "report carries {} objective(s), session tunes {m}",
                                    v.len()
                                )));
                            }
                            Evaluation::feasible_multi(v)
                        }
                        _ => Evaluation::infeasible(),
                    };
                    // The fallible entry point: the core's own non-finite
                    // guard (`Error::NonFiniteObjective`) surfaces as a
                    // typed reply even for requests that slipped past the
                    // protocol-boundary check.
                    t.session.try_report(cfg, eval).map_err(|e| WireError::from_error(&e))?;
                    // `ok` acknowledges durability: a failed journal append
                    // must surface *here*, not on the next ask — the result
                    // is in the in-memory history but would not survive a
                    // restart. (Clients should not re-report it: that would
                    // duplicate the trial.)
                    if let Some(e) = t.session.take_journal_error() {
                        return Err(WireError::from_error(&e));
                    }
                    Ok(vec![("len".into(), Json::Num(t.session.history().len() as f64))])
                })
            }
            Request::Best { session } => self.with_tenant(&session, |t| {
                let history = t.session.history();
                if t.session.tuner().options().objectives > 1 {
                    // Multi-objective sessions have no single incumbent:
                    // `best` is the Pareto front, in evaluation order.
                    let front: Vec<Json> = history
                        .pareto_front()
                        .iter()
                        .map(|tr| {
                            let objs = tr.objectives().unwrap_or_default();
                            Json::Obj(vec![
                                ("config".into(), journal::encode_config(&tr.config)),
                                (
                                    "values".into(),
                                    Json::Arr(
                                        objs.iter()
                                            .map(|&v| journal::encode_value(Some(v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect();
                    let mut fields = vec![("front".into(), Json::Arr(front))];
                    // No reference point means the dominated hypervolume is
                    // undefined, not an error: reply with an explicit `null`
                    // plus a typed note so clients can tell "not configured"
                    // apart from "front is empty".
                    match history.hypervolume_vs_ref() {
                        Some(hv) => fields.push(("hypervolume".into(), Json::Num(hv))),
                        None => {
                            fields.push(("hypervolume".into(), Json::Null));
                            fields.push(("note".into(), Json::Str("no_reference_point".into())));
                        }
                    }
                    return Ok(fields);
                }
                Ok(match history.best() {
                    Some(tr) => vec![
                        ("config".into(), journal::encode_config(&tr.config)),
                        ("value".into(), journal::encode_value(tr.value)),
                    ],
                    None => vec![("config".into(), Json::Null), ("value".into(), Json::Null)],
                })
            }),
            Request::Status { session: Some(session) } => self.with_tenant(&session, |t| {
                let mut fields = vec![
                    ("len".into(), Json::Num(t.session.history().len() as f64)),
                    ("budget".into(), Json::Num(t.session.tuner().options().budget as f64)),
                    ("remaining".into(), Json::Num(t.session.remaining_budget() as f64)),
                    ("pending".into(), Json::Num(t.session.pending().len() as f64)),
                    (
                        "best_value".into(),
                        journal::encode_value(t.session.history().best_value()),
                    ),
                ];
                // Transfer-enabled sessions report where their prior came
                // from; cold sessions omit the fields entirely.
                if let Some((donors, donor_trials)) = t.session.tuner().transfer_donors() {
                    fields.push(("transfer_donors".into(), Json::Num(donors as f64)));
                    fields.push(("donor_trials".into(), Json::Num(donor_trials as f64)));
                }
                if t.session.tuner().options().objectives > 1 {
                    let history = t.session.history();
                    fields.push((
                        "front_size".into(),
                        Json::Num(history.pareto_front().len() as f64),
                    ));
                    // Mirrors `best`: hypervolume is `null` (with the same
                    // typed note) when the session has no reference point.
                    match history.hypervolume_vs_ref() {
                        Some(hv) => fields.push(("hypervolume".into(), Json::Num(hv))),
                        None => {
                            fields.push(("hypervolume".into(), Json::Null));
                            fields.push(("note".into(), Json::Str("no_reference_point".into())));
                        }
                    }
                }
                Ok(fields)
            }),
            Request::Status { session: None } => {
                // One snapshot for both fields, so `sessions` always equals
                // `names.len()` even while creates/closes race this reply.
                let names = self.inner.registry.keys();
                Ok(vec![
                    ("sessions".into(), Json::Num(names.len() as f64)),
                    ("names".into(), Json::Arr(names.into_iter().map(Json::Str).collect())),
                ])
            }
            Request::Close { session } => {
                let unknown = || WireError::from_error(&Error::UnknownSession(session.clone()));
                let Some(slot) = self.inner.registry.get(&session) else {
                    return Err(unknown());
                };
                // Take the tenant under its mutex *before* touching the map:
                // an empty slot is a session mid-create (or already closed),
                // and its registration must be left alone. Laggard requests
                // still holding the Arc observe the emptied slot; the
                // journal writer is dropped (every record is already durable
                // — the writer has no buffered state).
                let tenant = lock_slot(&slot).take();
                let Some(tenant) = tenant else {
                    return Err(unknown());
                };
                self.inner.registry.remove_if(&session, &slot);
                let len = tenant.session.history().len();
                // Free the tenant now, not at scope end: a long-lived session
                // holds the surrogate cache's distance tables (O(budget²·d)
                // budgeted, O(n²·d) exact), which must not outlive the close
                // reply.
                drop(tenant);
                Ok(vec![
                    ("closed".into(), Json::Bool(true)),
                    ("len".into(), Json::Num(len as f64)),
                ])
            }
        }
    }

    /// Runs `f` on the named tenant under its slot mutex. No registry lock
    /// is held while `f` runs, so unrelated sessions proceed in parallel.
    fn with_tenant<R>(
        &self,
        session: &str,
        f: impl FnOnce(&mut Tenant) -> std::result::Result<R, WireError>,
    ) -> std::result::Result<R, WireError> {
        let unknown = || WireError::from_error(&Error::UnknownSession(session.to_string()));
        let slot = self.inner.registry.get(session).ok_or_else(unknown)?;
        let mut guard = lock_slot(&slot);
        let tenant = guard.as_mut().ok_or_else(unknown)?;
        f(tenant)
    }

    /// Validates a session id for registry and journal-file use: 1–64
    /// characters from `[A-Za-z0-9._-]`, not starting with a dot (which also
    /// rules out path tricks like `..`).
    fn validate_name(name: &str) -> std::result::Result<(), WireError> {
        let ok_char = |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-');
        if name.is_empty() || name.len() > 64 || name.starts_with('.') || !name.chars().all(ok_char)
        {
            return Err(WireError::bad_request(
                "session ids are 1-64 chars of [A-Za-z0-9._-], not starting with `.`",
            ));
        }
        Ok(())
    }

    fn create(
        &self,
        name: &str,
        spec: SessionSpec,
    ) -> std::result::Result<Vec<(String, Json)>, WireError> {
        Self::validate_name(name)?;
        let space = journal::space_from_spec(&spec.space)
            .map_err(|msg| WireError { kind: ErrorKind::InvalidSpace, msg })?;

        let mut builder = Baco::builder(space.clone())
            .budget(spec.budget)
            .doe_samples(spec.doe_samples)
            .seed(spec.seed);
        if let Some(s) = &spec.surrogate {
            builder = builder.surrogate(match s.as_str() {
                "rf" => SurrogateKind::RandomForest,
                _ => SurrogateKind::GaussianProcess,
            });
        }
        if let Some(b) = spec.hidden_constraints {
            builder = builder.hidden_constraints(b);
        }
        if let Some(b) = spec.feasibility_limit {
            builder = builder.feasibility_limit(b);
        }
        if let Some(b) = spec.local_search {
            builder = builder.local_search(b);
        }
        if let Some(b) = spec.log_objective {
            builder = builder.log_objective(b);
        }
        builder = builder.objectives(spec.objectives);
        if let Some(s) = spec.mo_strategy {
            builder = builder.mo_strategy(s);
        }
        if let Some(r) = spec.reference_point.clone() {
            builder = builder.reference_point(r);
        }
        if let Some(b) = spec.surrogate_budget {
            builder = builder.surrogate_budget(b);
        }
        if let Some(d) = spec.speculation_depth {
            builder = builder.speculation_depth(d);
        }
        let mut resumed = false;
        if let Some(dir) = &self.inner.opts.journal_dir {
            let path = dir.join(format!("{name}.jsonl"));
            resumed = spec.resume && Journal::exists(&path);
            builder = builder.journal_path(path).resume(spec.resume);
            if spec.transfer {
                // The corpus *is* the journal directory: every archived
                // session is a potential donor for this one.
                builder = builder.transfer(dir.clone());
            }
        } else if spec.resume {
            // Honoring `resume` is impossible without journals; a silent
            // fresh volatile session would discard the client's expensive
            // prior evaluations while it believes it resumed durably.
            return Err(WireError::bad_request(
                "this server has no journal directory; sessions cannot be resumed",
            ));
        } else if spec.transfer {
            // Same contract as `resume`: a memory-only server has no journal
            // corpus, and silently starting cold would let the client believe
            // it is riding on fleet experience.
            return Err(WireError::bad_request(
                "this server has no journal directory; there is no corpus to transfer from",
            ));
        }

        // Reserve the name first: a second create (or any op) under this id
        // now fails fast instead of racing the construction below — two
        // concurrent creates must not both truncate/replay the journal.
        let slot = self
            .inner
            .registry
            .reserve(name)
            .ok_or_else(|| WireError::from_error(&Error::SessionExists(name.to_string())))?;
        let mut guard = lock_slot(&slot);
        let built = builder.build().and_then(Session::new);
        let session = match built {
            Ok(s) => s,
            Err(e) => {
                drop(guard);
                // Remove only *this* create's reservation: a racing
                // close-then-recreate may already have replaced it.
                self.inner.registry.remove_if(name, &slot);
                return Err(WireError::from_error(&e));
            }
        };
        let len = session.history().len();
        let remaining = session.remaining_budget();
        let donors = session.tuner().transfer_donors();
        *guard = Some(Tenant { session, space });
        let mut fields = vec![
            ("session".into(), Json::Str(name.to_string())),
            ("resumed".into(), Json::Bool(resumed)),
            ("len".into(), Json::Num(len as f64)),
            ("remaining".into(), Json::Num(remaining as f64)),
        ];
        if let Some((donors, donor_trials)) = donors {
            fields.push(("transfer_donors".into(), Json::Num(donors as f64)));
            fields.push(("donor_trials".into(), Json::Num(donor_trials as f64)));
        }
        Ok(fields)
    }

    /// Starts the TCP front end on `addr` and returns its controller.
    /// Clients speak the [`proto`] protocol: one request line in, one reply
    /// line out, with pipelining (requests of one connection are answered
    /// strictly in request order; the optional `id` member correlates them).
    ///
    /// On Linux this is the event-driven readiness core — one loop
    /// multiplexing every connection over epoll, dispatch on
    /// [`ServerOptions::workers`] worker threads, write-side backpressure
    /// and `overloaded` load-shedding (see the module docs). Elsewhere it
    /// falls back to [`ServerHandle::serve_blocking`].
    ///
    /// # Errors
    /// [`Error::Io`] when the listener cannot bind.
    pub fn serve<A: ToSocketAddrs>(&self, addr: A) -> Result<TcpServer> {
        #[cfg(target_os = "linux")]
        {
            let (local, ev) = event::serve(self.clone(), addr)?;
            Ok(TcpServer { addr: local, inner: FrontEnd::Event(ev) })
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.serve_blocking(addr)
        }
    }

    /// Starts the blocking thread-per-connection TCP front end on `addr` in
    /// a background accept thread (bounded by
    /// [`ServerOptions::max_connections`] concurrent handler threads;
    /// further connections receive one `busy` error line and are closed).
    /// Kept as the portable fallback and as the baseline the
    /// `server_throughput` bench compares the event-driven core against.
    ///
    /// # Errors
    /// [`Error::Io`] when the listener cannot bind.
    pub fn serve_blocking<A: ToSocketAddrs>(&self, addr: A) -> Result<TcpServer> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::Io(format!("bind: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let handle = self.clone();
        let stop2 = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(_) => {
                        // Persistent accept errors (fd exhaustion) must not
                        // busy-spin the core that connection teardown needs.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        continue;
                    }
                };
                if active.fetch_add(1, Ordering::SeqCst) >= handle.inner.opts.max_connections {
                    active.fetch_sub(1, Ordering::SeqCst);
                    let busy = WireError {
                        kind: ErrorKind::Busy,
                        msg: "connection limit reached".into(),
                    };
                    let mut s = stream;
                    let _ = writeln!(s, "{}", proto::err_line(None, &busy));
                    continue; // dropped → closed
                }
                // The slot is released by a Drop guard so that even a panic
                // inside a session operation cannot leak it — otherwise
                // max_connections tenant panics would wedge the front end
                // into answering only `busy`.
                let guard = ConnGuard(Arc::clone(&active));
                let handle = handle.clone();
                std::thread::spawn(move || {
                    let _guard = guard;
                    serve_connection(&handle, stream);
                });
            }
        });
        Ok(TcpServer { addr: local, inner: FrontEnd::Blocking { stop, accept: Some(accept) } })
    }
}

/// Releases one connection slot on drop — unwind-safe by construction.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Longest request line the TCP front end accepts. An unbounded
/// `read_line` would let one client grow the multi-tenant daemon's memory
/// without limit by streaming bytes with no newline; past this cap the
/// connection gets one `bad_request` reply and is closed (there is no way
/// to resynchronize mid-line).
const MAX_REQUEST_LINE: usize = 1 << 20;

/// One connection: request line in, reply line out, until EOF, an I/O
/// error, or an oversized line.
fn serve_connection(handle: &ServerHandle, stream: TcpStream) {
    use std::io::Read;
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match (&mut reader).take(MAX_REQUEST_LINE as u64 + 1).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        if buf.len() > MAX_REQUEST_LINE {
            let e = proto::WireError::bad_request(format!(
                "request line exceeds {MAX_REQUEST_LINE} bytes"
            ));
            let _ = writeln!(writer, "{}", proto::err_line(None, &e));
            break;
        }
        let line = String::from_utf8_lossy(&buf);
        let reply = handle.handle_line(line.trim_end_matches(['\n', '\r']));
        if writeln!(writer, "{reply}").and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}

/// Controller of a running TCP front end (returned by
/// [`ServerHandle::serve`] or [`ServerHandle::serve_blocking`]). Dropping it
/// stops the serving loop; sessions and their journals live in the
/// [`ServerHandle`], not here.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    inner: FrontEnd,
}

#[derive(Debug)]
enum FrontEnd {
    Blocking {
        stop: Arc<AtomicBool>,
        accept: Option<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Event(event::EventServer),
}

impl TcpServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops serving and joins the loop. For the blocking front end,
    /// connections already being served run until their client disconnects;
    /// the event-driven front end drops its connections with the loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Blocks until the serving loop exits (it only exits on
    /// [`TcpServer::stop`] or drop from another thread — for a daemon, this
    /// parks forever).
    pub fn join(mut self) {
        match &mut self.inner {
            FrontEnd::Blocking { accept, .. } => {
                if let Some(h) = accept.take() {
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            FrontEnd::Event(ev) => ev.join(),
        }
    }

    fn shutdown(&mut self) {
        match &mut self.inner {
            FrontEnd::Blocking { stop, accept } => {
                if let Some(h) = accept.take() {
                    stop.store(true, Ordering::SeqCst);
                    // Poke the listener so the blocking accept observes the
                    // flag.
                    let _ = TcpStream::connect(self.addr);
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            FrontEnd::Event(ev) => ev.stop(),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_space_spec() -> &'static str {
        r#"{"params":[{"name":"a","kind":"int","lo":"0","hi":"15"},{"name":"b","kind":"int","lo":"0","hi":"15"}],"constraints":[]}"#
    }

    fn create_line(name: &str, budget: usize, seed: u64) -> String {
        format!(
            r#"{{"op":"create_session","session":"{name}","budget":{budget},"doe_samples":3,"seed":{seed},"space":{}}}"#,
            int_space_spec()
        )
    }

    fn parse(reply: &str) -> Json {
        crate::journal::json::parse(reply).expect("replies are valid JSON")
    }

    #[test]
    fn full_session_lifecycle_over_the_wire() {
        let srv = ServerHandle::new(ServerOptions::default());
        assert!(parse(&srv.handle_line(&create_line("s1", 6, 3)))
            .get("ok")
            .is_some_and(|j| *j == Json::Bool(true)));
        assert_eq!(srv.session_count(), 1);

        let mut n = 0;
        loop {
            let reply = parse(&srv.handle_line(r#"{"op":"ask","session":"s1"}"#));
            let cfg = reply.get("config").unwrap();
            if *cfg == Json::Null {
                break;
            }
            let a = cfg.get("a").and_then(Json::as_f64).unwrap();
            let report = format!(
                r#"{{"op":"report","session":"s1","config":{},"value":{}}}"#,
                cfg.to_line(),
                (a - 7.0).powi(2) + 1.0
            );
            assert!(srv.handle_line(&report).contains(r#""ok":true"#));
            n += 1;
        }
        assert_eq!(n, 6);

        let best = parse(&srv.handle_line(r#"{"op":"best","session":"s1"}"#));
        assert!(best.get("value").and_then(Json::as_f64).unwrap() >= 1.0);
        let status = parse(&srv.handle_line(r#"{"op":"status","session":"s1"}"#));
        assert_eq!(status.get("len").and_then(Json::as_f64), Some(6.0));
        assert_eq!(status.get("remaining").and_then(Json::as_f64), Some(0.0));

        let closed = parse(&srv.handle_line(r#"{"op":"close","session":"s1"}"#));
        assert_eq!(closed.get("closed"), Some(&Json::Bool(true)));
        assert_eq!(srv.session_count(), 0);
        // Ops on the closed session are typed errors.
        let err = parse(&srv.handle_line(r#"{"op":"ask","session":"s1"}"#));
        assert_eq!(
            err.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn budgeted_session_over_the_wire() {
        let srv = ServerHandle::new(ServerOptions::default());
        let create = format!(
            r#"{{"op":"create_session","session":"sb","budget":16,"doe_samples":4,"seed":9,"surrogate_budget":8,"space":{}}}"#,
            int_space_spec()
        );
        assert!(parse(&srv.handle_line(&create))
            .get("ok")
            .is_some_and(|j| *j == Json::Bool(true)));

        // Enough reports that the feasible history outgrows the 8-point
        // budget, so later asks run the active-set/trust-region path.
        let mut n = 0;
        loop {
            let reply = parse(&srv.handle_line(r#"{"op":"ask","session":"sb"}"#));
            let cfg = reply.get("config").unwrap();
            if *cfg == Json::Null {
                break;
            }
            let a = cfg.get("a").and_then(Json::as_f64).unwrap();
            let report = format!(
                r#"{{"op":"report","session":"sb","config":{},"value":{}}}"#,
                cfg.to_line(),
                (a - 7.0).powi(2) + 1.0
            );
            assert!(srv.handle_line(&report).contains(r#""ok":true"#));
            n += 1;
        }
        assert_eq!(n, 16);

        // Close frees the tenant (and its surrogate cache) immediately.
        let closed = parse(&srv.handle_line(r#"{"op":"close","session":"sb"}"#));
        assert_eq!(closed.get("closed"), Some(&Json::Bool(true)));
        assert_eq!(srv.session_count(), 0);

        // A sub-minimum budget is rejected at the wire with a typed error.
        let bad = format!(
            r#"{{"op":"create_session","session":"tiny","budget":4,"surrogate_budget":2,"space":{}}}"#,
            int_space_spec()
        );
        let err = parse(&srv.handle_line(&bad));
        assert_eq!(
            err.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn speculative_session_over_the_wire() {
        let srv = ServerHandle::new(ServerOptions::default());
        // The knob wires through create and the session still serves the
        // open loop (which keeps its explicit ask/report cadence — the
        // pipeline drives closed `run_batched` loops).
        let create = format!(
            r#"{{"op":"create_session","session":"sp","budget":6,"doe_samples":3,"seed":4,"speculation_depth":2,"space":{}}}"#,
            int_space_spec()
        );
        assert!(parse(&srv.handle_line(&create))
            .get("ok")
            .is_some_and(|j| *j == Json::Bool(true)));
        let mut n = 0;
        loop {
            let reply = parse(&srv.handle_line(r#"{"op":"ask","session":"sp"}"#));
            let cfg = reply.get("config").unwrap();
            if *cfg == Json::Null {
                break;
            }
            let a = cfg.get("a").and_then(Json::as_f64).unwrap();
            let report = format!(
                r#"{{"op":"report","session":"sp","config":{},"value":{}}}"#,
                cfg.to_line(),
                (a - 5.0).powi(2) + 1.0
            );
            assert!(srv.handle_line(&report).contains(r#""ok":true"#));
            n += 1;
        }
        assert_eq!(n, 6);

        // A depth above the cap is rejected at the wire with a typed error.
        let bad = format!(
            r#"{{"op":"create_session","session":"deep","budget":4,"speculation_depth":99,"space":{}}}"#,
            int_space_spec()
        );
        let err = parse(&srv.handle_line(&bad));
        assert_eq!(
            err.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn multi_objective_session_over_the_wire() {
        let srv = ServerHandle::new(ServerOptions::default());
        let create = format!(
            r#"{{"op":"create_session","session":"mo","budget":8,"doe_samples":4,"seed":2,"objectives":2,"reference_point":[200.0,40.0],"space":{}}}"#,
            int_space_spec()
        );
        assert!(parse(&srv.handle_line(&create))
            .get("ok")
            .is_some_and(|j| *j == Json::Bool(true)));

        loop {
            let reply = parse(&srv.handle_line(r#"{"op":"ask","session":"mo"}"#));
            let cfg = reply.get("config").unwrap();
            if *cfg == Json::Null {
                break;
            }
            let a = cfg.get("a").and_then(Json::as_f64).unwrap();
            let b = cfg.get("b").and_then(Json::as_f64).unwrap();
            // Latency falls with a, "area" rises with it: a real trade-off.
            let report = format!(
                r#"{{"op":"report","session":"mo","config":{},"values":[{},{}]}}"#,
                cfg.to_line(),
                1.0 + (15.0 - a) + b * 0.2,
                1.0 + 2.0 * a
            );
            assert!(srv.handle_line(&report).contains(r#""ok":true"#));
        }

        // A width-mismatched report is a typed refusal.
        let cfg = r#"{"a":1,"b":1}"#;
        let bad = format!(
            r#"{{"op":"report","session":"mo","config":{cfg},"values":[1.0]}}"#
        );
        assert!(srv.handle_line(&bad).contains(r#""kind":"bad_request""#));

        // `best` is the Pareto front plus the journaled-reference
        // hypervolume.
        let best = parse(&srv.handle_line(r#"{"op":"best","session":"mo"}"#));
        let front = best.get("front").and_then(Json::as_arr).unwrap();
        assert!(!front.is_empty());
        for point in front {
            assert!(point.get("config").is_some());
            assert_eq!(point.get("values").and_then(Json::as_arr).unwrap().len(), 2);
        }
        assert!(best.get("hypervolume").and_then(Json::as_f64).unwrap() > 0.0);
        // Mismatched reference point at create time is refused.
        let bad_create = format!(
            r#"{{"op":"create_session","session":"mo2","budget":4,"objectives":2,"reference_point":[1.0],"space":{}}}"#,
            int_space_spec()
        );
        assert!(srv.handle_line(&bad_create).contains(r#""kind":"bad_request""#));
    }

    #[test]
    fn duplicate_create_and_bad_names_are_rejected() {
        let srv = ServerHandle::new(ServerOptions::default());
        assert!(srv.handle_line(&create_line("dup", 4, 0)).contains(r#""ok":true"#));
        let again = parse(&srv.handle_line(&create_line("dup", 4, 0)));
        assert_eq!(
            again.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("session_exists")
        );
        for bad in ["", ".hidden", "..", "a/b", "x y", &"n".repeat(65)] {
            let reply = parse(&srv.handle_line(&create_line(bad, 4, 0)));
            assert_eq!(
                reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("bad_request"),
                "name {bad:?}"
            );
        }
        // A failed create must not leak a reservation.
        let bad_space = r#"{"op":"create_session","session":"broken","budget":4,"space":{"params":[{"name":"x","kind":"int","lo":"9","hi":"0"}],"constraints":[]}}"#;
        assert!(srv.handle_line(bad_space).contains(r#""kind":"invalid_space""#));
        assert_eq!(srv.session_count(), 1);
        assert!(srv.handle_line(&create_line("broken", 4, 0)).contains(r#""ok":true"#));
    }

    #[test]
    fn transfer_session_over_the_wire() {
        let dir = std::env::temp_dir().join(format!("baco-srv-transfer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let srv = ServerHandle::new(ServerOptions {
            journal_dir: Some(dir.clone()),
            ..ServerOptions::default()
        });
        let drive = |name: &str| loop {
            let reply = parse(&srv.handle_line(&format!(r#"{{"op":"ask","session":"{name}"}}"#)));
            let cfg = reply.get("config").unwrap();
            if *cfg == Json::Null {
                break;
            }
            let a = cfg.get("a").and_then(Json::as_f64).unwrap();
            let report = format!(
                r#"{{"op":"report","session":"{name}","config":{},"value":{}}}"#,
                cfg.to_line(),
                (a - 7.0).powi(2) + 1.0
            );
            assert!(srv.handle_line(&report).contains(r#""ok":true"#));
        };

        // A donor session runs cold and archives its journal in the corpus.
        assert!(srv.handle_line(&create_line("donor", 6, 1)).contains(r#""ok":true"#));
        drive("donor");
        assert!(srv.handle_line(r#"{"op":"close","session":"donor"}"#).contains(r#""ok":true"#));

        // The transfer session mines it: create reports the donor count...
        let create = format!(
            r#"{{"op":"create_session","session":"warm","budget":6,"doe_samples":3,"seed":2,"transfer":true,"space":{}}}"#,
            int_space_spec()
        );
        let created = parse(&srv.handle_line(&create));
        assert_eq!(created.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(created.get("transfer_donors").and_then(Json::as_f64), Some(1.0));
        assert!(created.get("donor_trials").and_then(Json::as_f64).unwrap() >= 2.0);

        // ...status repeats it, and the session still serves the loop.
        let status = parse(&srv.handle_line(r#"{"op":"status","session":"warm"}"#));
        assert_eq!(status.get("transfer_donors").and_then(Json::as_f64), Some(1.0));
        drive("warm");
        let best = parse(&srv.handle_line(r#"{"op":"best","session":"warm"}"#));
        assert!(best.get("value").and_then(Json::as_f64).unwrap() >= 1.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transfer_without_a_journal_dir_is_refused() {
        // No journal_dir means no corpus: a silent cold start would let the
        // client believe it is riding on fleet experience.
        let srv = ServerHandle::new(ServerOptions::default());
        let req = format!(
            r#"{{"op":"create_session","session":"t","budget":4,"transfer":true,"space":{}}}"#,
            int_space_spec()
        );
        let reply = srv.handle_line(&req);
        assert!(reply.contains(r#""kind":"bad_request""#), "{reply}");
        assert!(reply.contains("transfer"), "{reply}");
        assert_eq!(srv.session_count(), 0);
    }

    #[test]
    fn resume_without_a_journal_dir_is_refused() {
        // This server keeps sessions in memory only; honoring `resume`
        // is impossible, and a silent fresh session would discard what the
        // client believes is durable history.
        let srv = ServerHandle::new(ServerOptions::default());
        let req = format!(
            r#"{{"op":"create_session","session":"r","budget":4,"resume":true,"space":{}}}"#,
            int_space_spec()
        );
        let reply = srv.handle_line(&req);
        assert!(reply.contains(r#""kind":"bad_request""#), "{reply}");
        assert_eq!(srv.session_count(), 0);
    }

    #[test]
    fn tcp_front_end_serves_and_limits_connections() {
        let srv = ServerHandle::new(ServerOptions {
            max_connections: 2,
            ..ServerOptions::default()
        });
        let tcp = srv.serve("127.0.0.1:0").unwrap();
        let addr = tcp.addr();

        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        let read_line = |s: &mut TcpStream| {
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            line
        };
        writeln!(a, "{}", create_line("tcp1", 4, 1)).unwrap();
        assert!(read_line(&mut a).contains(r#""ok":true"#));
        writeln!(b, r#"{{"op":"status"}}"#).unwrap();
        assert!(read_line(&mut b).contains(r#""sessions":1"#));

        // Third concurrent connection: one typed refusal line, then closed
        // (`overloaded` from the event core; `busy` from the blocking
        // fallback on non-Linux hosts).
        #[cfg(target_os = "linux")]
        let refusal = r#""kind":"overloaded""#;
        #[cfg(not(target_os = "linux"))]
        let refusal = r#""kind":"busy""#;
        let mut c = TcpStream::connect(addr).unwrap();
        let line = read_line(&mut c);
        assert!(line.contains(refusal), "{line}");

        drop(a);
        drop(b);
        drop(c);
        tcp.stop();
        assert_eq!(srv.session_count(), 1, "sessions outlive the TCP front end");
    }

    #[test]
    fn blocking_front_end_still_answers_busy() {
        let srv = ServerHandle::new(ServerOptions {
            max_connections: 1,
            ..ServerOptions::default()
        });
        let tcp = srv.serve_blocking("127.0.0.1:0").unwrap();
        let addr = tcp.addr();
        let mut a = TcpStream::connect(addr).unwrap();
        writeln!(a, r#"{{"op":"status"}}"#).unwrap();
        let mut r = BufReader::new(a.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains(r#""sessions":0"#), "{line}");

        let b = TcpStream::connect(addr).unwrap();
        let mut rb = BufReader::new(b.try_clone().unwrap());
        let mut busy = String::new();
        rb.read_line(&mut busy).unwrap();
        assert!(busy.contains(r#""kind":"busy""#), "{busy}");
        drop((a, b));
        tcp.stop();
    }

    #[test]
    fn tcp_front_end_caps_request_line_length() {
        let srv = ServerHandle::new(ServerOptions::default());
        let tcp = srv.serve("127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(tcp.addr()).unwrap();
        // Stream more than the cap without ever sending a newline: the
        // server must answer with one typed error line and close, not
        // buffer without bound.
        let chunk = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        while sent <= MAX_REQUEST_LINE + chunk.len() {
            if s.write_all(&chunk).is_err() {
                break; // server already closed on us — also acceptable
            }
            sent += chunk.len();
        }
        let mut reply = String::new();
        let mut r = BufReader::new(s.try_clone().unwrap());
        if r.read_line(&mut reply).unwrap_or(0) > 0 {
            assert!(reply.contains(r#""kind":"bad_request""#), "{reply}");
        }
        // Either way the connection is closed afterwards.
        let mut rest = String::new();
        assert_eq!(r.read_line(&mut rest).unwrap_or(0), 0, "connection must be closed");
        tcp.stop();
    }
}
