//! Per-connection state machine of the event-driven server core.
//!
//! One [`ConnState`] tracks everything the readiness loop knows about a
//! client connection, independent of the transport:
//!
//! ```text
//!   bytes in ──► read_buf ──frame──► pending queue ──► (one in-flight
//!                (≤ cap)    (\n)       (FIFO)            dispatch)
//!                                                          │
//!   bytes out ◄── write_buf (bounded; over the limit ◄─────┘ reply
//!                 ⇒ reading pauses: backpressure)
//! ```
//!
//! Invariants the loop relies on:
//!
//! * **At most one request of a connection is in flight** at the workers;
//!   later pipelined requests wait in `pending`. Combined with FIFO
//!   delivery this answers every connection strictly in request order —
//!   and keeps a pipelined driver's per-session semantics identical to a
//!   sequential one's (requests of one connection never race each other).
//! * **Framing is incremental**: the unframed tail may never exceed the
//!   request-line cap. A client trickling an endless line is cut off after
//!   one typed error, with `cap + one read chunk` as the high-water mark of
//!   buffered bytes — not "whenever the line ends".
//! * **Shed entries keep their place in line.** When the server is
//!   overloaded, a request is answered with a typed `overloaded` error —
//!   but that reply is queued *through the same FIFO*, so replies stay in
//!   request order even while shedding.
//! * **The write buffer is bounded** by backpressure, not by a hard error:
//!   while more than `write_limit` bytes are queued, [`ConnState::wants_read`]
//!   turns false and the loop stops reading from (and eventually, via TCP
//!   flow control, stops the sending of) that client.

use crate::journal::json::Json;
use std::collections::VecDeque;

/// One entry of the pipeline FIFO.
#[derive(Debug)]
pub(crate) enum Pending {
    /// A framed request line waiting for its turn at the workers.
    Request(String),
    /// A request that was shed at frame time; `0` is the request's `id`
    /// member (if it had a parseable one) for the pre-ordained error reply.
    Shed(Option<Json>),
}

/// Why [`ConnState::ingest`] refused more input.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct LineTooLong {
    /// Bytes accumulated without a newline when the cap tripped.
    pub buffered: usize,
}

/// The lifecycle phase of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Reading requests and writing replies.
    Open,
    /// The peer half-closed (EOF on read): in-flight and pending requests
    /// still drain, their replies still flush, then the connection closes.
    Draining,
    /// A fatal protocol violation (oversized line): flush what is queued —
    /// ending with the one typed error — then close. Nothing further is
    /// read or dispatched.
    Closing,
}

/// All loop-side state of one client connection (see the module docs).
#[derive(Debug)]
pub(crate) struct ConnState {
    read_buf: Vec<u8>,
    pending: VecDeque<Pending>,
    in_flight: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    write_limit: usize,
    /// Backpressure latch: set when the write buffer overflows its limit,
    /// cleared once it drains to half the limit (hysteresis, so a client
    /// hovering at the boundary cannot thrash interest registrations).
    paused: bool,
    phase: Phase,
}

/// Past this many queued-but-unwritten reply bytes the write buffer shrinks
/// back to nothing when it drains, instead of keeping its capacity parked on
/// an idle connection.
const WRITE_SHRINK_AT: usize = 64 * 1024;

impl ConnState {
    /// A fresh connection with the given write-buffer bound.
    pub fn new(write_limit: usize) -> ConnState {
        ConnState {
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            in_flight: false,
            write_buf: Vec::new(),
            write_pos: 0,
            write_limit,
            paused: false,
            phase: Phase::Open,
        }
    }

    /// Appends freshly read bytes and returns the newly completed lines
    /// (without their terminators; a trailing `\r` is stripped).
    ///
    /// # Errors
    /// [`LineTooLong`] as soon as more than `cap` bytes accumulate without a
    /// newline — the incremental enforcement that makes a trickled 2 MiB
    /// "line" cost one error reply, not 2 MiB of buffering.
    pub fn ingest(&mut self, bytes: &[u8], cap: usize) -> Result<Vec<String>, LineTooLong> {
        debug_assert_eq!(self.phase, Phase::Open, "closing connections are not read");
        let mut lines = Vec::new();
        let mut rest = bytes;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..]; // drop the newline itself
            if self.read_buf.len() + head.len() > cap {
                self.read_buf.clear();
                return Err(LineTooLong { buffered: cap + 1 });
            }
            let line = if self.read_buf.is_empty() {
                String::from_utf8_lossy(head).into_owned()
            } else {
                self.read_buf.extend_from_slice(head);
                let whole = String::from_utf8_lossy(&self.read_buf).into_owned();
                self.read_buf.clear();
                whole
            };
            lines.push(line.trim_end_matches('\r').to_string());
        }
        if self.read_buf.len() + rest.len() > cap {
            let buffered = self.read_buf.len() + rest.len();
            self.read_buf = Vec::new(); // drop the hostile bytes *and* capacity
            return Err(LineTooLong { buffered });
        }
        self.read_buf.extend_from_slice(rest);
        if lines.is_empty() && self.read_buf.is_empty() && self.read_buf.capacity() > WRITE_SHRINK_AT
        {
            self.read_buf = Vec::new();
        }
        Ok(lines)
    }

    /// Queues one framed request (or a shed marker) at the back of the FIFO.
    pub fn push_pending(&mut self, p: Pending) {
        self.pending.push_back(p);
    }

    /// Requests framed but not yet dispatched or answered.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// How many queued entries are real `Request`s (shed markers excluded) —
    /// the number of server-wide `outstanding` slots this queue holds.
    pub fn pending_requests(&self) -> usize {
        self.pending.iter().filter(|p| matches!(p, Pending::Request(_))).count()
    }

    /// Whether a request of this connection is currently at the workers.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Takes the next FIFO entry *if* the connection may dispatch (nothing
    /// in flight). `Request` entries flip the in-flight flag; `Shed` entries
    /// do not (their reply is pre-ordained and queued by the caller).
    pub fn next_dispatch(&mut self) -> Option<Pending> {
        if self.in_flight {
            return None;
        }
        let next = self.pending.pop_front()?;
        if matches!(next, Pending::Request(_)) {
            self.in_flight = true;
        }
        Some(next)
    }

    /// Marks the in-flight request answered (its reply is being queued).
    pub fn complete_in_flight(&mut self) {
        debug_assert!(self.in_flight);
        self.in_flight = false;
    }

    /// Appends one reply line (newline added here) to the write buffer;
    /// overflowing the bound latches backpressure.
    pub fn queue_reply(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
        if self.buffered_out() > self.write_limit {
            self.paused = true;
        }
    }

    /// The bytes waiting to go out.
    pub fn writable(&self) -> &[u8] {
        &self.write_buf[self.write_pos..]
    }

    /// Records `n` bytes as written; reclaims the buffer once drained.
    pub fn consume_written(&mut self, n: usize) {
        self.write_pos += n;
        debug_assert!(self.write_pos <= self.write_buf.len());
        if self.write_pos == self.write_buf.len() {
            if self.write_buf.capacity() > WRITE_SHRINK_AT {
                self.write_buf = Vec::new();
            } else {
                self.write_buf.clear();
            }
            self.write_pos = 0;
        } else if self.write_pos > WRITE_SHRINK_AT {
            // Keep the unwritten tail compact so a slow reader cannot pin
            // the already-flushed prefix in memory.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        if self.paused && self.buffered_out() <= self.write_limit / 2 {
            self.paused = false;
        }
    }

    /// Unwritten reply bytes currently buffered.
    pub fn buffered_out(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Whether the write buffer is past its bound — the backpressure signal
    /// that pauses reading from this connection.
    #[cfg(test)]
    pub fn over_write_limit(&self) -> bool {
        self.buffered_out() > self.write_limit
    }

    /// Whether the loop should be reading from this connection: open, and
    /// not muted by the write-side backpressure latch.
    pub fn wants_read(&self) -> bool {
        self.phase == Phase::Open && !self.paused
    }

    /// The peer signalled EOF: stop reading, drain what is queued.
    pub fn peer_closed(&mut self) {
        if self.phase == Phase::Open {
            self.phase = Phase::Draining;
        }
        self.read_buf = Vec::new();
    }

    /// A fatal framing violation: flush queued replies, then close. Pending
    /// requests are dropped — there is no way to resynchronize mid-line.
    pub fn poison(&mut self) {
        self.phase = Phase::Closing;
        self.pending.clear();
        self.read_buf = Vec::new();
    }

    /// Current lifecycle phase.
    #[cfg(test)]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether the connection has served its purpose and the loop should
    /// drop it: everything flushed and — unless poisoned — nothing left to
    /// answer.
    pub fn done(&self) -> bool {
        match self.phase {
            Phase::Open => false,
            Phase::Draining => {
                self.buffered_out() == 0 && !self.in_flight && self.pending.is_empty()
            }
            Phase::Closing => self.buffered_out() == 0 && !self.in_flight,
        }
    }

    /// Approximate heap footprint, for the bounded-memory assertions of the
    /// unit tests (the integration soak measures whole-process RSS instead).
    #[cfg(test)]
    pub fn memory_bytes(&self) -> usize {
        self.read_buf.capacity()
            + self.write_buf.capacity()
            + self
                .pending
                .iter()
                .map(|p| match p {
                    Pending::Request(s) => s.capacity(),
                    Pending::Shed(_) => std::mem::size_of::<Json>(),
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_lines_across_arbitrary_chunk_boundaries() {
        let mut c = ConnState::new(1024);
        let input = b"{\"op\":\"status\"}\r\n{\"op\":\"ask\",\"session\":\"s\"}\n{\"op\":";
        let mut lines = Vec::new();
        for chunk in input.chunks(3) {
            lines.extend(c.ingest(chunk, 1 << 20).unwrap());
        }
        assert_eq!(
            lines,
            vec![r#"{"op":"status"}"#.to_string(), r#"{"op":"ask","session":"s"}"#.to_string()]
        );
        // The partial tail stays buffered until its newline arrives.
        let more = c.ingest(b"\"close\"}\n", 1 << 20).unwrap();
        assert_eq!(more, vec![r#"{"op":"close"}"#.to_string()]);
    }

    #[test]
    fn line_cap_trips_incrementally_not_at_line_end() {
        let mut c = ConnState::new(1024);
        let cap = 100;
        // Trickle 30-byte chunks of a line that never ends: the error must
        // arrive as soon as the cap is crossed, with bounded buffering.
        let chunk = [b'x'; 30];
        let mut fed = 0;
        let err = loop {
            match c.ingest(&chunk, cap) {
                Ok(lines) => {
                    assert!(lines.is_empty());
                    fed += chunk.len();
                    assert!(fed <= cap + chunk.len(), "cap must trip before {fed} bytes");
                }
                Err(e) => break e,
            }
        };
        assert!(err.buffered <= cap + chunk.len());
        // A complete-but-oversized line in one chunk also trips.
        let mut c = ConnState::new(1024);
        let mut big = vec![b'y'; cap + 1];
        big.push(b'\n');
        assert!(c.ingest(&big, cap).is_err());
        // And the buffer is reclaimed, not parked.
        assert_eq!(c.memory_bytes(), 0);
    }

    #[test]
    fn fifo_dispatch_is_serial_and_order_preserving() {
        let mut c = ConnState::new(1024);
        c.push_pending(Pending::Request("r1".into()));
        c.push_pending(Pending::Shed(None));
        c.push_pending(Pending::Request("r2".into()));

        let Some(Pending::Request(r1)) = c.next_dispatch() else { panic!("r1 first") };
        assert_eq!(r1, "r1");
        assert!(c.in_flight());
        // While r1 is in flight nothing else dispatches — not even the shed
        // marker, which must keep its place in the reply order.
        assert!(c.next_dispatch().is_none());

        c.complete_in_flight();
        let Some(Pending::Shed(None)) = c.next_dispatch() else { panic!("shed second") };
        assert!(!c.in_flight(), "shed entries do not occupy the in-flight slot");
        let Some(Pending::Request(r2)) = c.next_dispatch() else { panic!("r2 last") };
        assert_eq!(r2, "r2");
    }

    #[test]
    fn write_backpressure_pauses_and_resumes_with_hysteresis() {
        let mut c = ConnState::new(100);
        assert!(c.wants_read());
        // Staying under the limit never pauses, whatever the fill level.
        c.queue_reply(&"a".repeat(90));
        assert!(!c.over_write_limit());
        assert!(c.wants_read());
        // Overflowing latches the pause …
        c.queue_reply(&"b".repeat(60));
        assert!(c.over_write_limit());
        assert!(!c.wants_read(), "over the limit ⇒ reading pauses");
        // … draining to just under the limit is not enough (hysteresis) …
        let n = c.buffered_out() - 60;
        c.consume_written(n);
        assert!(!c.over_write_limit());
        assert!(!c.wants_read());
        // … reading resumes at half the limit.
        c.consume_written(15);
        assert!(c.wants_read());
    }

    #[test]
    fn drained_buffers_release_their_capacity() {
        let mut c = ConnState::new(1 << 20);
        c.queue_reply(&"z".repeat(200 * 1024));
        let n = c.writable().len();
        c.consume_written(n);
        assert_eq!(c.memory_bytes(), 0, "a drained big write buffer must not stay parked");
    }

    #[test]
    fn lifecycle_phases_gate_done() {
        let mut c = ConnState::new(1024);
        c.push_pending(Pending::Request("r".into()));
        c.peer_closed();
        assert_eq!(c.phase(), Phase::Draining);
        assert!(!c.done(), "pending work still drains after EOF");
        let Some(Pending::Request(_)) = c.next_dispatch() else { panic!() };
        c.complete_in_flight();
        c.queue_reply("reply");
        assert!(!c.done(), "reply not yet flushed");
        let n = c.writable().len();
        c.consume_written(n);
        assert!(c.done());

        let mut c = ConnState::new(1024);
        c.push_pending(Pending::Request("dropped".into()));
        c.queue_reply("error");
        c.poison();
        assert_eq!(c.phase(), Phase::Closing);
        assert_eq!(c.pending_len(), 0, "poisoning drops unanswerable pendings");
        assert!(!c.done());
        let n = c.writable().len();
        c.consume_written(n);
        assert!(c.done());
    }
}
