//! The sharded session registry backing [`ServerHandle`](super::ServerHandle).
//!
//! An N-way sharded `RwLock<HashMap>` keyed by session id: a request hashes
//! its session id to one shard, takes that shard's lock just long enough to
//! clone the session's `Arc`, and then operates on the per-session mutex —
//! so requests against *unrelated* sessions never contend on a shared lock,
//! and requests against the *same* session serialize (which is what makes a
//! concurrently-driven session's trajectory deterministic).
//!
//! Lock discipline (the registry's no-deadlock argument):
//!
//! 1. Shard locks are only ever held for a map lookup/insert/remove — never
//!    while blocking on a slot mutex, never two shards at once (`len` and
//!    `keys` visit shards strictly one at a time).
//! 2. A thread may take a shard lock *while holding* a slot mutex (close
//!    and failed-create cleanup do, via [`Registry::remove_if`]), but never
//!    the reverse — and by rule 1 no shard-lock holder ever waits on a slot
//!    mutex, so the slot → shard edge cannot complete a cycle.
//!
//! Poisoned locks are recovered rather than propagated: one tenant's panic
//! must not wedge the daemon or any other tenant. Shard-lock poisoning is
//! harmless (the map itself is only mutated by insert/remove, which don't
//! panic mid-structure); a poisoned *slot* mutex, however, may guard a
//! tenant whose in-memory state was torn mid-mutation, so [`lock_slot`]
//! fails safe by emptying the slot — later requests get a typed
//! `unknown_session` and the client re-creates/resumes from the (durable,
//! always-consistent) journal instead of silently driving corrupted state.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// One registry slot. `None` marks a slot whose tenant is gone — either a
/// creation that failed after reserving the name, or a session that was
/// closed while another thread still held the `Arc`.
pub(crate) type Slot<T> = Arc<Mutex<Option<T>>>;

/// An N-way sharded concurrent `String → T` map (see the module docs for the
/// locking discipline).
#[derive(Debug)]
pub(crate) struct Registry<T> {
    shards: Vec<RwLock<HashMap<String, Slot<T>>>>,
}

impl<T> Registry<T> {
    /// Creates a registry with `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Registry {
            shards: (0..shards.max(1)).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Slot<T>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Reserves `key` with an empty slot, failing if the key is present.
    /// The caller fills the slot (under its mutex) once construction
    /// succeeds, or removes the reservation on failure via
    /// [`Registry::remove_if`] with this slot (slot-identity-checked, so a
    /// racing close-and-recreate's fresh registration is never removed by
    /// a stale cleanup).
    pub fn reserve(&self, key: &str) -> Option<Slot<T>> {
        let mut map = self.shard(key).write().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(key) {
            return None;
        }
        let slot: Slot<T> = Arc::new(Mutex::new(None));
        map.insert(key.to_string(), Arc::clone(&slot));
        Some(slot)
    }

    /// The slot registered under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Slot<T>> {
        self.shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Unregisters `key`, but only while it still maps to `slot` — a caller
    /// racing a close-and-recreate of the same id must not remove someone
    /// else's fresh registration. The tenant itself is *not* dropped here —
    /// the caller empties the slot under its mutex, so laggard requests
    /// holding the `Arc` observe `None` instead of racing a half-dropped
    /// tenant.
    pub fn remove_if(&self, key: &str, slot: &Slot<T>) -> bool {
        let mut map = self.shard(key).write().unwrap_or_else(PoisonError::into_inner);
        if map.get(key).is_some_and(|s| Arc::ptr_eq(s, slot)) {
            map.remove(key);
            true
        } else {
            false
        }
    }

    /// Number of registered keys (reserved-but-unfilled ones included).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// All registered keys, sorted (shards are visited one at a time).
    pub fn keys(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.shards {
            out.extend(s.read().unwrap_or_else(PoisonError::into_inner).keys().cloned());
        }
        out.sort();
        out
    }
}

/// Locks a slot. Poisoning (a panic inside a session operation) is
/// recovered *by emptying the slot*: the tenant may have been torn
/// mid-mutation, and serving it would silently break the
/// trajectory-determinism and journal-consistency guarantees — dropping it
/// fails safe, because the journal on disk is always consistent and the
/// client can re-create/resume the session from it.
pub(crate) fn lock_slot<T>(slot: &Mutex<Option<T>>) -> MutexGuard<'_, Option<T>> {
    match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            guard.take();
            guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_get_remove_roundtrip() {
        let r: Registry<u32> = Registry::new(4);
        let slot = r.reserve("a").expect("fresh key");
        assert!(r.reserve("a").is_none(), "double reservation must fail");
        *lock_slot(&slot) = Some(7);
        assert_eq!(*lock_slot(&r.get("a").unwrap()), Some(7));
        assert_eq!(r.len(), 1);
        assert_eq!(r.keys(), vec!["a".to_string()]);
        assert!(r.remove_if("a", &slot));
        lock_slot(&slot).take();
        assert!(r.get("a").is_none());
        assert_eq!(r.len(), 0);
        // The name is reusable after removal …
        let fresh = r.reserve("a").unwrap();
        // … and a stale holder of the old slot cannot remove the new one.
        assert!(!r.remove_if("a", &slot));
        assert!(r.get("a").is_some());
        assert!(r.remove_if("a", &fresh));
    }

    #[test]
    fn keys_spread_over_shards() {
        let r: Registry<u32> = Registry::new(8);
        for i in 0..64 {
            *lock_slot(&r.reserve(&format!("s{i}")).unwrap()) = Some(i);
        }
        assert_eq!(r.len(), 64);
        let used = r.shards.iter().filter(|s| !s.read().unwrap().is_empty()).count();
        assert!(used >= 4, "64 keys landed in only {used}/8 shards");
    }

    #[test]
    fn poisoned_slot_is_emptied_not_served() {
        let r: Registry<u32> = Registry::new(2);
        let slot = r.reserve("p").unwrap();
        *lock_slot(&slot) = Some(1);
        let s2 = Arc::clone(&slot);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = s2.lock().unwrap();
            panic!("tenant panics mid-mutation");
        }));
        // The torn tenant must not be served; the slot reads as closed.
        assert!(lock_slot(&slot).is_none());
    }

    #[test]
    fn concurrent_mixed_operations_do_not_deadlock() {
        let r: Arc<Registry<u64>> = Arc::new(Registry::new(4));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = format!("k{}", (t * 7 + i) % 16);
                        if let Some(slot) = r.reserve(&key) {
                            *lock_slot(&slot) = Some(t);
                        }
                        if let Some(slot) = r.get(&key) {
                            let _ = lock_slot(&slot).as_ref().map(|v| v + 1);
                        }
                        if i % 5 == 0 {
                            if let Some(slot) = r.get(&key) {
                                let took = lock_slot(&slot).take().is_some();
                                if took {
                                    r.remove_if(&key, &slot);
                                }
                            }
                        }
                        let _ = r.len();
                    }
                });
            }
        });
        assert!(r.len() <= 16);
    }
}
