//! The line-delimited JSON (JSONL) wire protocol of the tuning server.
//!
//! Every request is one JSON object on one line; every reply is one JSON
//! object on one line. Requests carry an `"op"` tag naming the operation and
//! a `"session"` id where applicable; replies carry `"ok": true` plus
//! op-specific fields, or `"ok": false` plus a typed `"error"` object —
//! **never** a panic, whatever the bytes (the codec is the journal's
//! panic-free [`crate::journal::json`] parser, and every malformation
//! maps to [`ErrorKind::BadRequest`]). An optional `"id"` member (any JSON
//! value) is echoed verbatim in the reply so clients may pipeline requests.
//!
//! | op | request fields | reply fields |
//! |---|---|---|
//! | `create_session` | `session`, `space` ([`space_spec`](crate::journal::space_spec) object), `budget`; optional `doe_samples`, `seed`, `resume`, `surrogate` (`"gp"`/`"rf"`), `hidden_constraints`, `feasibility_limit`, `local_search`, `log_objective`, `objectives` (≥ 1), `mo_strategy` (`"ehvi"` default / `"parego"`; multi-objective acquisition), `reference_point` (array, one finite entry per objective), `surrogate_budget` (≥ 8; budget-bounded surrogate mode), `speculation_depth` (≤ 8; speculative evaluation pipeline for the batched loop), `transfer` (mine the server's journal directory for compatible archived sessions; requires a `journal_dir`) | `resumed`, `len`, `remaining` |
//! | `ask` | `session` | `config` (object or `null` when exhausted) |
//! | `suggest_batch` | `session`, `q` | `configs` (array, possibly empty) |
//! | `report` | `session`, `config`; `value` (number, `null`, `"NaN"`, `"inf"`, `"-inf"`) **or** `values` (array, one entry per objective of a multi-objective session), and/or `feasible` — only *all-finite* measurements count as feasible, anything else is recorded as a failed evaluation | `len` |
//! | `best` | `session` | single-objective: `config`+`value` (or both `null`); multi-objective: `front` (array of `{config, values}` in evaluation order) plus `hypervolume` — a number when the session has a reference point, otherwise `null` with a typed `note: "no_reference_point"` |
//! | `status` | optional `session` | per-session: `len`, `budget`, `remaining`, `pending`, `best_value`, and for multi-objective sessions `front_size` + `hypervolume` (number, or `null` with `note: "no_reference_point"`); server-wide: `sessions`, `names` |
//! | `close` | `session` | `closed`, `len` |
//!
//! Configurations use the run journal's codec
//! ([`encode_config`](crate::journal::encode_config) /
//! [`decode_config`](crate::journal::decode_config)), and the `space` spec is
//! the journal header's (see `docs/ARCHITECTURE.md` for the full grammar) —
//! one format everywhere.
//!
//! ```
//! use baco::server::proto::{parse_request, Request};
//!
//! let env = parse_request(r#"{"op":"ask","session":"s1","id":7}"#).unwrap();
//! assert!(matches!(env.req, Request::Ask { ref session } if session == "s1"));
//! assert!(parse_request("not json").is_err());
//! # let _ = env.id;
//! ```

use crate::journal::json::{self, Json};
use crate::Error;

/// The typed failure classes a reply's `error.kind` can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON, or was missing/mistyping fields.
    BadRequest,
    /// The named session is not in the registry.
    UnknownSession,
    /// `create_session` named an id the registry already holds.
    SessionExists,
    /// The `space` spec (or its constraints) failed to build.
    InvalidSpace,
    /// The session's journal exists but cannot be decoded or does not match.
    JournalCorrupt,
    /// A journal filesystem operation failed.
    Io,
    /// The tuner itself failed (surrogate numerics, invalid options, …).
    Tuner,
    /// The server refused the connection or request due to load limits.
    Busy,
    /// The request was shed by the event-driven core's load limiter: the
    /// server is saturated and this request was answered without being
    /// executed. Shed load is retryable load — clients should back off and
    /// resend (the `baco-cli client` does so automatically).
    Overloaded,
}

impl ErrorKind {
    /// The wire tag of this kind.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::InvalidSpace => "invalid_space",
            ErrorKind::JournalCorrupt => "journal_corrupt",
            ErrorKind::Io => "io",
            ErrorKind::Tuner => "tuner",
            ErrorKind::Busy => "busy",
            ErrorKind::Overloaded => "overloaded",
        }
    }
}

/// A typed error reply: a [`ErrorKind`] plus a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Failure class (the reply's `error.kind` tag).
    pub kind: ErrorKind,
    /// Human-readable description (the reply's `error.msg`).
    pub msg: String,
}

impl WireError {
    /// A [`ErrorKind::BadRequest`] error.
    pub fn bad_request(msg: impl Into<String>) -> WireError {
        WireError { kind: ErrorKind::BadRequest, msg: msg.into() }
    }

    /// The [`ErrorKind::Overloaded`] load-shedding error.
    pub fn overloaded() -> WireError {
        WireError {
            kind: ErrorKind::Overloaded,
            msg: "server overloaded; retry with backoff".into(),
        }
    }

    /// Maps a tuner [`Error`] onto its wire kind.
    pub fn from_error(e: &Error) -> WireError {
        let kind = match e {
            Error::UnknownSession(_) => ErrorKind::UnknownSession,
            Error::SessionExists(_) => ErrorKind::SessionExists,
            Error::InvalidSpace(_)
            | Error::ConstraintParse(_)
            | Error::UnknownParameter(_)
            | Error::EmptyFeasibleSet
            | Error::FeasibleSetTooLarge { .. } => ErrorKind::InvalidSpace,
            Error::Io(_) => ErrorKind::Io,
            Error::JournalCorrupt { .. } => ErrorKind::JournalCorrupt,
            _ => ErrorKind::Tuner,
        };
        WireError { kind, msg: e.to_string() }
    }
}

/// The options of a `create_session` request (everything not in
/// [`crate::tuner::BacoOptions`]' default besides the scalar knobs the wire
/// exposes stays at its default).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// The search space, as a raw [`space_spec`](crate::journal::space_spec)
    /// object (decoded by the server so failures stay typed).
    pub space: Json,
    /// Total evaluation budget (required, must be positive).
    pub budget: usize,
    /// Initial-phase sample count (default 10).
    pub doe_samples: usize,
    /// RNG seed (default 0).
    pub seed: u64,
    /// Resume from this session's journal when one exists (default false).
    pub resume: bool,
    /// Value surrogate: `"gp"` (default) or `"rf"`.
    pub surrogate: Option<String>,
    /// Learn hidden constraints (default true).
    pub hidden_constraints: Option<bool>,
    /// Apply the ε_f minimum-feasibility threshold (default true).
    pub feasibility_limit: Option<bool>,
    /// Optimize the acquisition with local search (default true).
    pub local_search: Option<bool>,
    /// Log-transform the objective (default true).
    pub log_objective: Option<bool>,
    /// Number of objectives the session tunes (default 1).
    pub objectives: usize,
    /// Multi-objective acquisition strategy: `"ehvi"` (the default) or
    /// `"parego"`. Ignored by single-objective sessions. Omit it when
    /// resuming a journal created before the knob existed — those journals
    /// ran ParEGO and must be resumed with `"parego"`.
    pub mo_strategy: Option<crate::tuner::MultiObjectiveStrategy>,
    /// Hypervolume reference point (one finite entry per objective).
    pub reference_point: Option<Vec<f64>>,
    /// Budget-bounded surrogate mode: cap the GP training set at this many
    /// points per round (default unset — exact GPs over the whole history).
    /// See [`BacoBuilder::surrogate_budget`](crate::tuner::BacoBuilder).
    pub surrogate_budget: Option<usize>,
    /// Speculative evaluation pipeline: how many fantasy rounds the
    /// session's batched loop may draft beyond the in-flight round
    /// (default unset — the classic per-round barrier). At most
    /// [`MAX_SPECULATION_DEPTH`](crate::tuner::MAX_SPECULATION_DEPTH); see
    /// [`BacoBuilder::speculation_depth`](crate::tuner::BacoBuilder).
    pub speculation_depth: Option<usize>,
    /// Transfer learning: seed the session from structurally-compatible
    /// archived journals in the server's journal directory (default false).
    /// Requires the server to have a `journal_dir` — requesting transfer on
    /// a memory-only server is a typed `bad_request`. See
    /// [`BacoBuilder::transfer`](crate::tuner::BacoBuilder).
    pub transfer: bool,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `create_session`: register (or resume) a named session.
    Create {
        /// Session id.
        session: String,
        /// Everything needed to build the tuner.
        spec: SessionSpec,
    },
    /// `ask`: one proposal.
    Ask {
        /// Session id.
        session: String,
    },
    /// `suggest_batch`: a round of up to `q` proposals.
    SuggestBatch {
        /// Session id.
        session: String,
        /// Round size.
        q: usize,
    },
    /// `report`: one evaluation outcome.
    Report {
        /// Session id.
        session: String,
        /// The evaluated configuration (raw; decoded against the session's
        /// space).
        config: Json,
        /// Measured objective vector (`None` = hidden-constraint failure; a
        /// 1-vector for the classic scalar `value` field).
        values: Option<Vec<f64>>,
        /// Whether the evaluation succeeded.
        feasible: bool,
    },
    /// `best`: the incumbent.
    Best {
        /// Session id.
        session: String,
    },
    /// `status`: one session's counters, or the server's.
    Status {
        /// Session id; `None` asks for server-wide status.
        session: Option<String>,
    },
    /// `close`: unregister a session (its journal stays on disk).
    Close {
        /// Session id.
        session: String,
    },
}

/// A parsed request plus its optional `id` correlation value.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The `id` member, echoed verbatim in the reply.
    pub id: Option<Json>,
    /// The operation.
    pub req: Request,
}

fn need_str(j: &Json, key: &str) -> Result<String, WireError> {
    match j.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(WireError::bad_request(format!("`{key}` must be a string"))),
        None => Err(WireError::bad_request(format!("missing `{key}`"))),
    }
}

fn opt_usize(j: &Json, key: &str) -> Result<Option<usize>, WireError> {
    match j.get(key) {
        None => Ok(None),
        Some(Json::Num(v)) if v.fract() == 0.0 && *v >= 0.0 && *v <= (1u64 << 53) as f64 => {
            Ok(Some(*v as usize))
        }
        Some(_) => Err(WireError::bad_request(format!("`{key}` must be a non-negative integer"))),
    }
}

fn need_usize(j: &Json, key: &str) -> Result<usize, WireError> {
    opt_usize(j, key)?.ok_or_else(|| WireError::bad_request(format!("missing `{key}`")))
}

fn opt_bool(j: &Json, key: &str) -> Result<Option<bool>, WireError> {
    match j.get(key) {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(WireError::bad_request(format!("`{key}` must be a boolean"))),
    }
}

/// Parses one request line.
///
/// # Errors
/// [`ErrorKind::BadRequest`] with a description of the first malformation.
/// Never panics, whatever the bytes.
pub fn parse_request(line: &str) -> Result<Envelope, WireError> {
    let j = json::parse(line).map_err(WireError::bad_request)?;
    if j.as_obj().is_none() {
        return Err(WireError::bad_request("request is not a JSON object"));
    }
    let id = j.get("id").cloned();
    let op = need_str(&j, "op")?;
    let req = match op.as_str() {
        "create_session" => {
            let session = need_str(&j, "session")?;
            let space = j
                .get("space")
                .cloned()
                .ok_or_else(|| WireError::bad_request("missing `space`"))?;
            let spec = SessionSpec {
                space,
                budget: need_usize(&j, "budget")?,
                doe_samples: opt_usize(&j, "doe_samples")?.unwrap_or(10),
                seed: match j.get("seed") {
                    None => 0,
                    Some(v) => crate::journal::parse_u64_json(v)
                        .map_err(|e| WireError::bad_request(format!("`seed`: {e}")))?,
                },
                resume: opt_bool(&j, "resume")?.unwrap_or(false),
                surrogate: match j.get("surrogate") {
                    None => None,
                    Some(Json::Str(s)) if s == "gp" || s == "rf" => Some(s.clone()),
                    Some(_) => {
                        return Err(WireError::bad_request("`surrogate` must be \"gp\" or \"rf\""))
                    }
                },
                hidden_constraints: opt_bool(&j, "hidden_constraints")?,
                feasibility_limit: opt_bool(&j, "feasibility_limit")?,
                local_search: opt_bool(&j, "local_search")?,
                log_objective: opt_bool(&j, "log_objective")?,
                objectives: match opt_usize(&j, "objectives")? {
                    None => 1,
                    Some(0) => {
                        return Err(WireError::bad_request("`objectives` must be at least 1"))
                    }
                    Some(m) => m,
                },
                mo_strategy: match j.get("mo_strategy") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) if s == "ehvi" => {
                        Some(crate::tuner::MultiObjectiveStrategy::Ehvi)
                    }
                    Some(Json::Str(s)) if s == "parego" => {
                        Some(crate::tuner::MultiObjectiveStrategy::ParEgo)
                    }
                    Some(_) => {
                        return Err(WireError::bad_request(
                            "`mo_strategy` must be \"ehvi\" or \"parego\"",
                        ))
                    }
                },
                reference_point: match j.get("reference_point") {
                    None | Some(Json::Null) => None,
                    Some(Json::Arr(items)) => {
                        let mut r = Vec::with_capacity(items.len());
                        for it in items {
                            match it.as_f64() {
                                Some(v) if v.is_finite() => r.push(v),
                                _ => {
                                    return Err(WireError::bad_request(
                                        "`reference_point` entries must be finite numbers",
                                    ))
                                }
                            }
                        }
                        Some(r)
                    }
                    Some(_) => {
                        return Err(WireError::bad_request("`reference_point` must be an array"))
                    }
                },
                surrogate_budget: match opt_usize(&j, "surrogate_budget")? {
                    Some(b) if b < crate::tuner::MIN_SURROGATE_BUDGET => {
                        return Err(WireError::bad_request(format!(
                            "`surrogate_budget` must be at least {}",
                            crate::tuner::MIN_SURROGATE_BUDGET
                        )))
                    }
                    b => b,
                },
                speculation_depth: match opt_usize(&j, "speculation_depth")? {
                    Some(d) if d > crate::tuner::MAX_SPECULATION_DEPTH => {
                        return Err(WireError::bad_request(format!(
                            "`speculation_depth` must be at most {}",
                            crate::tuner::MAX_SPECULATION_DEPTH
                        )))
                    }
                    d => d,
                },
                transfer: opt_bool(&j, "transfer")?.unwrap_or(false),
            };
            if let Some(r) = &spec.reference_point {
                if r.len() != spec.objectives {
                    return Err(WireError::bad_request(format!(
                        "`reference_point` has {} entries for {} objectives",
                        r.len(),
                        spec.objectives
                    )));
                }
            }
            Request::Create { session, spec }
        }
        "ask" => Request::Ask { session: need_str(&j, "session")? },
        "suggest_batch" => Request::SuggestBatch {
            session: need_str(&j, "session")?,
            q: need_usize(&j, "q")?,
        },
        "report" => {
            let session = need_str(&j, "session")?;
            let config = j
                .get("config")
                .cloned()
                .ok_or_else(|| WireError::bad_request("missing `config`"))?;
            if j.get("value").is_some() && j.get("values").is_some() {
                return Err(WireError::bad_request("`value` and `values` are exclusive"));
            }
            let values: Option<Vec<f64>> = match j.get("values") {
                Some(Json::Arr(items)) => {
                    if items.is_empty() {
                        return Err(WireError::bad_request("`values` must not be empty"));
                    }
                    let mut out = Vec::with_capacity(items.len());
                    for it in items {
                        let v = crate::journal::decode_value(it)
                            .map_err(|e| WireError::bad_request(format!("`values`: {e}")))?
                            .ok_or_else(|| {
                                WireError::bad_request("`values` entries must be measurements")
                            })?;
                        out.push(v);
                    }
                    Some(out)
                }
                Some(_) => return Err(WireError::bad_request("`values` must be an array")),
                None => match j.get("value") {
                    None => None,
                    Some(v) => crate::journal::decode_value(v)
                        .map_err(|e| WireError::bad_request(format!("`value`: {e}")))?
                        .map(|v| vec![v]),
                },
            };
            // Non-finite objectives would poison the surrogate (a NaN
            // survives the log transform as an impossibly good observation),
            // so only all-finite measurements count as feasible; anything
            // non-finite without an explicit `feasible` is recorded as an
            // infeasible (failed) evaluation, and claiming it feasible is a
            // malformed request. The same guard also lives in the core
            // ingestion path (`Session::try_report`) for in-process callers.
            let finite = values
                .as_ref()
                .is_some_and(|v| v.iter().all(|x| x.is_finite()));
            let feasible = match opt_bool(&j, "feasible")? {
                Some(true) if !finite => {
                    return Err(WireError::bad_request(
                        "`feasible: true` requires finite measurement(s)",
                    ))
                }
                Some(f) => f,
                None => finite,
            };
            Request::Report { session, config, values, feasible }
        }
        "best" => Request::Best { session: need_str(&j, "session")? },
        "status" => Request::Status {
            session: match j.get("session") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(WireError::bad_request("`session` must be a string")),
            },
        },
        "close" => Request::Close { session: need_str(&j, "session")? },
        other => return Err(WireError::bad_request(format!("unknown op `{other}`"))),
    };
    Ok(Envelope { id, req })
}

/// Serializes a success reply: `{"ok":true,("id":…,)…fields}`.
pub fn ok_line(id: Option<&Json>, fields: Vec<(String, Json)>) -> String {
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.extend(fields);
    Json::Obj(members).to_line()
}

/// Serializes a typed error reply:
/// `{"ok":false,("id":…,)"error":{"kind":…,"msg":…}}`.
pub fn err_line(id: Option<&Json>, e: &WireError) -> String {
    let mut members = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.push((
        "error".to_string(),
        Json::Obj(vec![
            ("kind".to_string(), Json::Str(e.kind.tag().to_string())),
            ("msg".to_string(), Json::Str(e.msg.clone())),
        ]),
    ));
    Json::Obj(members).to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let lines = [
            r#"{"op":"create_session","session":"s","budget":5,"space":{"params":[],"constraints":[]}}"#,
            r#"{"op":"ask","session":"s"}"#,
            r#"{"op":"suggest_batch","session":"s","q":4}"#,
            r#"{"op":"report","session":"s","config":{"x":1},"value":2.5}"#,
            r#"{"op":"best","session":"s"}"#,
            r#"{"op":"status"}"#,
            r#"{"op":"status","session":"s"}"#,
            r#"{"op":"close","session":"s"}"#,
        ];
        for line in lines {
            parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        }
    }

    #[test]
    fn surrogate_budget_parses_and_validates() {
        let parse = |extra: &str| {
            parse_request(&format!(
                r#"{{"op":"create_session","session":"s","budget":5,"space":{{"params":[],"constraints":[]}}{extra}}}"#
            ))
        };
        // Omitted → unset (exact surrogates).
        let Ok(Envelope { req: Request::Create { spec, .. }, .. }) = parse("") else {
            panic!("plain create must parse");
        };
        assert_eq!(spec.surrogate_budget, None);
        // Set → plumbed through.
        let Ok(Envelope { req: Request::Create { spec, .. }, .. }) =
            parse(r#","surrogate_budget":64"#)
        else {
            panic!("budgeted create must parse");
        };
        assert_eq!(spec.surrogate_budget, Some(64));
        // Below the floor (or malformed) → typed bad_request.
        for bad in [r#","surrogate_budget":4"#, r#","surrogate_budget":"lots""#] {
            assert_eq!(parse(bad).unwrap_err().kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn speculation_depth_parses_and_validates() {
        let parse = |extra: &str| {
            parse_request(&format!(
                r#"{{"op":"create_session","session":"s","budget":5,"space":{{"params":[],"constraints":[]}}{extra}}}"#
            ))
        };
        // Omitted → unset (the classic per-round barrier).
        let Ok(Envelope { req: Request::Create { spec, .. }, .. }) = parse("") else {
            panic!("plain create must parse");
        };
        assert_eq!(spec.speculation_depth, None);
        // Set (0 included — an explicit barrier) → plumbed through.
        for (extra, want) in [
            (r#","speculation_depth":0"#, Some(0)),
            (r#","speculation_depth":2"#, Some(2)),
        ] {
            let Ok(Envelope { req: Request::Create { spec, .. }, .. }) = parse(extra) else {
                panic!("speculative create must parse: {extra}");
            };
            assert_eq!(spec.speculation_depth, want, "{extra}");
        }
        // Above the cap (or malformed) → typed bad_request.
        for bad in [r#","speculation_depth":9"#, r#","speculation_depth":"deep""#] {
            assert_eq!(parse(bad).unwrap_err().kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn mo_strategy_parses_and_validates() {
        use crate::tuner::MultiObjectiveStrategy;
        let parse = |extra: &str| {
            parse_request(&format!(
                r#"{{"op":"create_session","session":"s","budget":5,"space":{{"params":[],"constraints":[]}}{extra}}}"#
            ))
        };
        // Omitted → None (the server applies the library default, EHVI).
        let Ok(Envelope { req: Request::Create { spec, .. }, .. }) = parse("") else {
            panic!("plain create must parse");
        };
        assert_eq!(spec.mo_strategy, None);
        for (tag, want) in [
            ("ehvi", MultiObjectiveStrategy::Ehvi),
            ("parego", MultiObjectiveStrategy::ParEgo),
        ] {
            let Ok(Envelope { req: Request::Create { spec, .. }, .. }) =
                parse(&format!(r#","objectives":2,"mo_strategy":"{tag}""#))
            else {
                panic!("{tag} create must parse");
            };
            assert_eq!(spec.mo_strategy, Some(want));
        }
        for bad in [r#","mo_strategy":"nsga2""#, r#","mo_strategy":7"#] {
            assert_eq!(parse(bad).unwrap_err().kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn transfer_parses_and_validates() {
        let parse = |extra: &str| {
            parse_request(&format!(
                r#"{{"op":"create_session","session":"s","budget":5,"space":{{"params":[],"constraints":[]}}{extra}}}"#
            ))
        };
        // Omitted → off (cold start, the historical behavior).
        let Ok(Envelope { req: Request::Create { spec, .. }, .. }) = parse("") else {
            panic!("plain create must parse");
        };
        assert!(!spec.transfer);
        for (extra, want) in [(r#","transfer":true"#, true), (r#","transfer":false"#, false)] {
            let Ok(Envelope { req: Request::Create { spec, .. }, .. }) = parse(extra) else {
                panic!("transfer create must parse: {extra}");
            };
            assert_eq!(spec.transfer, want, "{extra}");
        }
        // Non-boolean → typed bad_request.
        for bad in [r#","transfer":1"#, r#","transfer":"yes""#] {
            assert_eq!(parse(bad).unwrap_err().kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn report_value_and_feasible_interplay() {
        let parse = |extra: &str| {
            parse_request(&format!(
                r#"{{"op":"report","session":"s","config":{{}}{extra}}}"#
            ))
        };
        // Omitted value → infeasible.
        let Ok(Envelope { req: Request::Report { values, feasible, .. }, .. }) = parse("") else {
            panic!("omitted value must parse");
        };
        assert_eq!((values, feasible), (None, false));
        // Tagged non-finite values parse but never count as feasible
        // measurements — they would poison the surrogate.
        let Ok(Envelope { req: Request::Report { values, feasible, .. }, .. }) =
            parse(r#","value":"inf""#)
        else {
            panic!("inf must parse");
        };
        assert_eq!((values, feasible), (Some(vec![f64::INFINITY]), false));
        let Ok(Envelope { req: Request::Report { values, feasible, .. }, .. }) =
            parse(r#","value":"NaN""#)
        else {
            panic!("NaN must parse");
        };
        assert!(values.unwrap()[0].is_nan());
        assert!(!feasible);
        assert_eq!(
            parse(r#","value":"NaN","feasible":true"#).unwrap_err().kind,
            ErrorKind::BadRequest,
            "claiming a NaN measurement feasible is malformed"
        );
        // Explicit feasible:false keeps a present value out of the model.
        let Ok(Envelope { req: Request::Report { feasible, .. }, .. }) =
            parse(r#","value":3,"feasible":false"#)
        else {
            panic!("explicit infeasible must parse");
        };
        assert!(!feasible);
        // feasible:true without a value is contradictory.
        assert_eq!(parse(r#","feasible":true"#).unwrap_err().kind, ErrorKind::BadRequest);
    }

    #[test]
    fn report_values_vector_interplay() {
        let parse = |extra: &str| {
            parse_request(&format!(
                r#"{{"op":"report","session":"s","config":{{}}{extra}}}"#
            ))
        };
        // A clean vector is a feasible multi-objective measurement.
        let Ok(Envelope { req: Request::Report { values, feasible, .. }, .. }) =
            parse(r#","values":[1.5,2.5]"#)
        else {
            panic!("vector must parse");
        };
        assert_eq!(values, Some(vec![1.5, 2.5]));
        assert!(feasible);
        // Any non-finite component demotes the whole measurement …
        let Ok(Envelope { req: Request::Report { feasible, .. }, .. }) =
            parse(r#","values":[1.5,"NaN"]"#)
        else {
            panic!("NaN component must parse");
        };
        assert!(!feasible);
        // … and claiming it feasible is malformed, as are empty/mixed forms.
        for bad in [
            r#","values":[1.5,"inf"],"feasible":true"#,
            r#","values":[]"#,
            r#","values":[null]"#,
            r#","values":3"#,
            r#","value":1,"values":[1]"#,
        ] {
            assert_eq!(parse(bad).unwrap_err().kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for line in [
            "",
            "garbage",
            "[]",
            "42",
            r#"{"op":"nope"}"#,
            r#"{"op":"ask"}"#,
            r#"{"op":"ask","session":7}"#,
            r#"{"op":"suggest_batch","session":"s","q":-1}"#,
            r#"{"op":"suggest_batch","session":"s","q":1.5}"#,
            r#"{"op":"create_session","session":"s","budget":5}"#,
            r#"{"op":"create_session","session":"s","space":{},"budget":"5"}"#,
            r#"{"op":"report","session":"s","value":1}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
        }
    }

    #[test]
    fn id_is_echoed_in_both_reply_shapes() {
        let env = parse_request(r#"{"op":"status","id":[1,"a"]}"#).unwrap();
        let ok = ok_line(env.id.as_ref(), vec![("sessions".into(), Json::Num(0.0))]);
        assert!(ok.contains(r#""id":[1,"a"]"#), "{ok}");
        let err = err_line(env.id.as_ref(), &WireError::bad_request("x"));
        assert!(err.contains(r#""id":[1,"a"]"#), "{err}");
        assert!(err.contains(r#""kind":"bad_request""#), "{err}");
        // Replies always parse back.
        json::parse(&ok).unwrap();
        json::parse(&err).unwrap();
    }

    #[test]
    fn error_kind_mapping_covers_registry_errors() {
        let e = WireError::from_error(&Error::UnknownSession("s".into()));
        assert_eq!(e.kind, ErrorKind::UnknownSession);
        let e = WireError::from_error(&Error::SessionExists("s".into()));
        assert_eq!(e.kind, ErrorKind::SessionExists);
        let e = WireError::from_error(&Error::JournalCorrupt { line: 1, msg: "x".into() });
        assert_eq!(e.kind, ErrorKind::JournalCorrupt);
    }
}
