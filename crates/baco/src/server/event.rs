//! The event-driven TCP front end: one readiness loop multiplexing every
//! connection over a hand-rolled epoll poller ([`super::sys`]), with request
//! dispatch on a small worker pool.
//!
//! ```text
//!              ┌───────────────── readiness loop (1 thread) ─────────────────┐
//!   accept ──► │ non-blocking accept → slab of ConnState                     │
//!   readable ─► read → incremental framing → FIFO ──► job queue ─┐           │
//!   writable ─► flush bounded write buffers  ◄── completions ◄── │ workers   │
//!   waker ───► drain completions                                 │ (N threads│
//!              └─────────────────────────────────────────────────┘  share the│
//!                                                                   sharded  │
//!                                                                   registry)┘
//! ```
//!
//! Division of labour: the loop does **only I/O and framing** — every
//! request (JSON parse included) runs on a worker via
//! [`ServerHandle::handle_line`], so a slow tuner operation never stalls
//! accepts, reads, or writes. Per-connection order is preserved by
//! dispatching at most one request per connection at a time
//! ([`ConnState`]'s FIFO); cross-connection parallelism comes from the pool,
//! and per-session serialization is the registry's per-slot mutex, exactly
//! as under the thread-per-connection front end.
//!
//! Overload policy (replacing the old hard `busy` connection refusal):
//!
//! * more than [`ServerOptions::max_outstanding`] requests accepted but
//!   unanswered server-wide, or more than
//!   [`ServerOptions::max_pending_per_conn`] queued on one connection
//!   ⇒ the request is **shed**: a typed `overloaded` error reply (with the
//!   request's `id` echoed) delivered in order, connection kept open —
//!   shed load is retryable load;
//! * a connection whose write buffer outgrows
//!   [`ServerOptions::write_buf_limit`] stops being read until it drains
//!   (backpressure via TCP flow control);
//! * only above [`ServerOptions::max_connections`] — an fd-exhaustion
//!   guard, not a throughput limit — is a fresh connection answered with
//!   one `overloaded` line and closed.

use super::conn::{ConnState, Pending};
use super::proto::{self, WireError};
use super::sys::{self, Poller};
use super::{ServerHandle, MAX_REQUEST_LINE};
use crate::journal::json;
use crate::{Error, Result};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::os::unix::prelude::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Token of the listening socket (never a valid slab index).
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token of the loop-wake pipe.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// One request handed to the worker pool.
struct Job {
    token: usize,
    gen: u64,
    line: String,
}

/// One worker result on its way back to the loop.
struct Completion {
    token: usize,
    gen: u64,
    reply: String,
}

/// State shared between the loop, the workers, and the controller.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    completions: Mutex<Vec<Completion>>,
    stop: AtomicBool,
}

impl Shared {
    fn enqueue(&self, job: Job) {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.jobs_cv.notify_one();
    }
}

/// Wakes the loop out of `epoll_wait` (worker completions, stop requests).
/// Cheap to clone; writes are single bytes and a full pipe is itself a
/// successful wake, so `WouldBlock` is ignored.
#[derive(Debug)]
pub(crate) struct Waker(UnixStream);

impl Waker {
    fn wake(&self) {
        let _ = (&self.0).write(&[1u8]);
    }

    fn try_clone(&self) -> std::io::Result<Waker> {
        Ok(Waker(self.0.try_clone()?))
    }
}

/// Controller of a running event front end (wrapped by
/// [`super::TcpServer`]).
#[derive(Debug)]
pub(crate) struct EventServer {
    stop: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

impl EventServer {
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    pub(crate) fn join(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and spawns the readiness loop plus its worker pool.
pub(crate) fn serve<A: ToSocketAddrs>(
    handle: ServerHandle,
    addr: A,
) -> Result<(SocketAddr, EventServer)> {
    let listener = TcpListener::bind(addr).map_err(|e| Error::Io(format!("bind: {e}")))?;
    let local = listener.local_addr().map_err(|e| Error::Io(format!("local_addr: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| Error::Io(format!("set_nonblocking: {e}")))?;

    let (wake_rx, wake_tx) =
        UnixStream::pair().map_err(|e| Error::Io(format!("waker: {e}")))?;
    wake_rx.set_nonblocking(true).map_err(|e| Error::Io(format!("waker: {e}")))?;
    wake_tx.set_nonblocking(true).map_err(|e| Error::Io(format!("waker: {e}")))?;
    let waker = Waker(wake_tx);

    let poller = Poller::new().map_err(|e| Error::Io(format!("epoll_create: {e}")))?;
    poller
        .add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)
        .map_err(|e| Error::Io(format!("epoll_ctl(listener): {e}")))?;
    poller
        .add(wake_rx.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKER)
        .map_err(|e| Error::Io(format!("epoll_ctl(waker): {e}")))?;

    let stop = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        jobs: Mutex::new(VecDeque::new()),
        jobs_cv: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        stop: AtomicBool::new(false),
    });

    let workers: Vec<JoinHandle<()>> = (0..handle.inner.opts.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let handle = handle.clone();
            let waker = waker.try_clone().map_err(|e| Error::Io(format!("waker: {e}")))?;
            Ok(std::thread::spawn(move || worker_loop(&shared, &handle, &waker)))
        })
        .collect::<Result<_>>()?;

    let stop2 = Arc::clone(&stop);
    let loop_waker = waker.try_clone().map_err(|e| Error::Io(format!("waker: {e}")))?;
    let thread = std::thread::spawn(move || {
        let mut lp = EventLoop {
            handle,
            poller,
            listener,
            wake_rx,
            shared: Arc::clone(&shared),
            stop: stop2,
            slab: Vec::new(),
            free: Vec::new(),
            conns: 0,
            outstanding: 0,
            next_gen: 0,
            scratch: vec![0u8; 64 * 1024],
            accept_throttled: false,
        };
        lp.run();
        // Loop done: release the workers, then join them so no worker
        // outlives the front end it belongs to.
        shared.stop.store(true, Ordering::SeqCst);
        shared.jobs_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
    });

    Ok((local, EventServer { stop, waker: loop_waker, thread: Some(thread) }))
}

fn worker_loop(shared: &Shared, handle: &ServerHandle, waker: &Waker) {
    loop {
        let job = {
            let mut q = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.jobs_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // `handle_line` promises never to panic; the catch is belt and
        // braces so one violation cannot wedge the connection forever
        // behind a lost completion.
        let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle.handle_line(&job.line)
        }))
        .unwrap_or_else(|_| {
            proto::err_line(
                None,
                &WireError { kind: proto::ErrorKind::Tuner, msg: "internal panic".into() },
            )
        });
        shared
            .completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion { token: job.token, gen: job.gen, reply });
        waker.wake();
    }
}

/// One multiplexed connection in the slab.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Distinguishes this connection from earlier users of the same slab
    /// slot, so a completion for a dead connection is never delivered to
    /// its successor.
    gen: u64,
    /// Event set currently registered with the poller.
    interest: u32,
}

struct EventLoop {
    handle: ServerHandle,
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    conns: usize,
    /// Requests accepted (framed, not shed) but not yet answered,
    /// server-wide — the load-shedding measure.
    outstanding: usize,
    next_gen: u64,
    scratch: Vec<u8>,
    /// Set when `accept` failed for a reason other than `WouldBlock`
    /// (fd exhaustion): the next wait uses a timeout so the loop retries
    /// without busy-spinning on a level-triggered listener event.
    accept_throttled: bool,
}

const READ_INTEREST: u32 = sys::EPOLLIN | sys::EPOLLRDHUP;

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<(u32, u64)> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = if self.accept_throttled { 50 } else { -1 };
            if self.poller.wait(&mut events, timeout).is_err() {
                break; // a broken epoll fd is unrecoverable
            }
            if self.accept_throttled {
                // Retry the accept backlog even if no event fired.
                self.accept_ready();
            }
            for &(ev, token) in &events {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    idx => self.conn_event(idx as usize, ev),
                }
            }
            // Completions are drained every iteration (not only on waker
            // events): a wake byte pushed while the loop was already awake
            // must not postpone its replies to the next kernel event.
            self.deliver_completions();
        }
    }

    fn accept_ready(&mut self) {
        self.accept_throttled = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns >= self.handle.inner.opts.max_connections {
                        // Past the fd guard: shed the connection itself —
                        // one typed line (the socket's empty send buffer
                        // accepts it without blocking), then close.
                        let _ = stream.set_nonblocking(true);
                        let mut s = stream;
                        let _ = s.write_all(
                            format!("{}\n", proto::err_line(None, &WireError::overloaded()))
                                .as_bytes(),
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.slab.push(None);
                        self.slab.len() - 1
                    });
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        state: ConnState::new(self.handle.inner.opts.write_buf_limit),
                        gen: self.next_gen,
                        interest: READ_INTEREST,
                    };
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), READ_INTEREST, idx as u64)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.slab[idx] = Some(conn);
                    self.conns += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // fd exhaustion and friends: back off instead of
                    // spinning on the still-readable listener.
                    self.accept_throttled = true;
                    return;
                }
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(n) if n < buf.len() => return,
                Ok(_) => continue,
                Err(_) => return,
            }
        }
    }

    fn deliver_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut c = self.shared.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *c)
        };
        for c in done {
            let Some(conn) = self.slab.get_mut(c.token).and_then(Option::as_mut) else {
                continue; // connection died with the request in flight
            };
            if conn.gen != c.gen {
                continue; // slot recycled since; same story
            }
            conn.state.complete_in_flight();
            self.outstanding -= 1;
            conn.state.queue_reply(&c.reply);
            self.pump(c.token);
            self.flush_and_update(c.token);
        }
    }

    fn conn_event(&mut self, idx: usize, ev: u32) {
        if self.slab.get(idx).and_then(Option::as_ref).is_none() {
            return; // closed earlier in this event batch
        }
        if ev & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        if ev & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.conn_readable(idx);
        }
        // Whatever happened — new replies queued, backpressure toggled, the
        // socket reported writable — one flush-and-reconcile pass settles it.
        self.flush_and_update(idx);
    }

    fn conn_readable(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else { return };
            if !conn.state.wants_read() {
                return;
            }
            let n = match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.state.peer_closed();
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            };
            let framed = conn.state.ingest(&self.scratch[..n], MAX_REQUEST_LINE);
            match framed {
                Ok(lines) => {
                    for line in lines {
                        self.frame_request(idx, line);
                    }
                }
                Err(too_long) => {
                    // One typed error, then close after the flush — there
                    // is no way to resynchronize inside an unbounded line.
                    let e = WireError::bad_request(format!(
                        "request line exceeds {MAX_REQUEST_LINE} bytes ({}+ buffered)",
                        too_long.buffered
                    ));
                    let reply = proto::err_line(None, &e);
                    let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                        return;
                    };
                    // Poisoning drops the pending FIFO; release the
                    // outstanding slots its queued requests held (the
                    // in-flight one, if any, is released by its completion
                    // as usual — the connection stays alive until then).
                    self.outstanding -= conn.state.pending_requests();
                    conn.state.queue_reply(&reply);
                    conn.state.poison();
                    return;
                }
            }
            if n < self.scratch.len() {
                return; // drained the socket (level-trigger refires if not)
            }
        }
    }

    fn frame_request(&mut self, idx: usize, line: String) {
        let opts = &self.handle.inner.opts;
        let max_outstanding = opts.max_outstanding;
        let max_pending = opts.max_pending_per_conn;
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else { return };
        let overloaded = self.outstanding >= max_outstanding
            || conn.state.pending_len() >= max_pending;
        if overloaded {
            // Shed: answer `overloaded` (id echoed) *in order* — the marker
            // rides the same FIFO as real requests.
            let id = json::parse(&line).ok().and_then(|j| j.get("id").cloned());
            conn.state.push_pending(Pending::Shed(id));
        } else {
            self.outstanding += 1;
            conn.state.push_pending(Pending::Request(line));
        }
        self.pump(idx);
    }

    /// Advances a connection's FIFO: queues replies for shed entries and
    /// dispatches the next request if none is in flight.
    fn pump(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else { return };
            let gen = conn.gen;
            match conn.state.next_dispatch() {
                None => return,
                Some(Pending::Request(line)) => {
                    self.shared.enqueue(Job { token: idx, gen, line });
                    return;
                }
                Some(Pending::Shed(id)) => {
                    let reply = proto::err_line(id.as_ref(), &WireError::overloaded());
                    conn.state.queue_reply(&reply);
                }
            }
        }
    }

    /// Flushes as much of the write buffer as the socket accepts, closes
    /// finished connections, and reconciles the poller interest set.
    fn flush_and_update(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else { return };
            let chunk = conn.state.writable();
            if chunk.is_empty() {
                break;
            }
            match conn.stream.write(chunk) {
                Ok(0) => {
                    self.close_conn(idx);
                    return;
                }
                Ok(n) => conn.state.consume_written(n),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else { return };
        if conn.state.done() {
            self.close_conn(idx);
            return;
        }
        let mut want = 0u32;
        if conn.state.wants_read() {
            want |= READ_INTEREST;
        }
        if conn.state.buffered_out() > 0 {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, want, idx as u64).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) else { return };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        // Release every outstanding slot this connection still held: its
        // queued requests die here, and its in-flight one (if any) must be
        // released here too, because the stale-generation check will skip
        // its completion without touching the counter.
        self.outstanding -= conn.state.pending_requests() + usize::from(conn.state.in_flight());
        self.conns -= 1;
        self.free.push(idx);
    }
}
