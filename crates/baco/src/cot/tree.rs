use crate::space::{CVal, Configuration, SearchSpace};
use crate::{Error, Result};
use rand::Rng;

/// One tree of the chain: the feasible partial configurations of a
/// co-dependent parameter group.
///
/// Level `i` of the tree assigns `params()[i]`; each root-to-leaf path is a
/// feasible partial configuration.
#[derive(Debug, Clone)]
pub struct Tree {
    params: Vec<usize>,
    nodes: Vec<Node>,
    root_children: Vec<u32>,
    root_leaf_count: u64,
}

#[derive(Debug, Clone)]
struct Node {
    /// Domain index assigned to the level's parameter.
    value: u64,
    children: Vec<u32>,
    /// Number of leaves under (and including) this node.
    leaf_count: u64,
}

/// Summary statistics of one tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of parameters (levels).
    pub depth: usize,
    /// Total enumerated nodes.
    pub nodes: usize,
    /// Number of leaves (feasible partial configurations).
    pub leaves: u64,
}

impl Tree {
    /// Enumerates the feasible partial configurations of `params` under the
    /// given constraint indices (into `space.known_constraints()`).
    ///
    /// Constraint-evaluation errors on a partial configuration mark the path
    /// infeasible rather than aborting: an undefined schedule (division by
    /// zero in a derived quantity, say) is a schedule the compiler rejects.
    ///
    /// # Errors
    /// [`Error::FeasibleSetTooLarge`] if more than `node_limit` nodes would
    /// be created.
    pub(crate) fn enumerate(
        space: &SearchSpace,
        params: &[usize],
        constraint_idxs: &[usize],
        node_limit: usize,
    ) -> Result<Self> {
        // For each level, the constraints that become fully assigned there.
        let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); params.len()];
        for &ci in constraint_idxs {
            let c = &space.known_constraints()[ci];
            let level = c
                .params()
                .iter()
                .map(|p| {
                    params
                        .iter()
                        .position(|q| q == p)
                        .expect("constraint param must be in group")
                })
                .max()
                .expect("constraints in a tree reference at least one param");
            by_level[level].push(ci);
        }

        let mut scratch = space.default_configuration();
        let mut nodes: Vec<Node> = Vec::new();
        let mut root_children = Vec::new();

        // Iterative DFS to avoid recursion limits on deep groups.
        struct Frame {
            level: usize,
            node: Option<u32>, // None = virtual root
            next_value: u64,
        }
        let mut stack = vec![Frame {
            level: 0,
            node: None,
            next_value: 0,
        }];

        while let Some(top) = stack.last_mut() {
            let level = top.level;
            if level == params.len() {
                // Leaf registered on creation; pop.
                stack.pop();
                continue;
            }
            let p = params[level];
            let size = space
                .param(p)
                .domain_size()
                .expect("tree parameters are discrete");
            if top.next_value >= size {
                // Exhausted this level; compute leaf_count bottom-up on pop.
                let node = top.node;
                stack.pop();
                if let Some(ni) = node {
                    let count: u64 = if level == params.len() {
                        1
                    } else {
                        nodes[ni as usize]
                            .children
                            .iter()
                            .map(|&c| nodes[c as usize].leaf_count)
                            .sum()
                    };
                    nodes[ni as usize].leaf_count = count;
                }
                continue;
            }
            let v = top.next_value;
            top.next_value += 1;
            let parent = top.node;

            scratch.set_cval(p, CVal::Idx(v));
            // Evaluate constraints that became decidable at this level.
            let feasible = by_level[level].iter().all(|&ci| {
                space.known_constraints()[ci]
                    .eval(&scratch)
                    .unwrap_or(false)
            });
            if !feasible {
                continue;
            }
            if nodes.len() >= node_limit {
                return Err(Error::FeasibleSetTooLarge { limit: node_limit });
            }
            let id = nodes.len() as u32;
            nodes.push(Node {
                value: v,
                children: Vec::new(),
                leaf_count: if level + 1 == params.len() { 1 } else { 0 },
            });
            match parent {
                Some(pi) => nodes[pi as usize].children.push(id),
                None => root_children.push(id),
            }
            if level + 1 < params.len() {
                stack.push(Frame {
                    level: level + 1,
                    node: Some(id),
                    next_value: 0,
                });
            }
        }

        // Interior nodes with no surviving children are dead paths; prune
        // them (iteratively, bottom-up effect achieved by repeated passes).
        // The DFS above already assigned leaf_count bottom-up, but interior
        // nodes whose subtree died have leaf_count == 0.
        let root_leaf_count = root_children
            .iter()
            .map(|&c| nodes[c as usize].leaf_count)
            .sum();

        Ok(Tree {
            params: params.to_vec(),
            nodes,
            root_children,
            root_leaf_count,
        })
    }

    /// The group's parameter indices, in level order.
    pub fn params(&self) -> &[usize] {
        &self.params
    }

    /// Number of feasible partial configurations (leaves).
    pub fn leaf_count(&self) -> u64 {
        self.root_leaf_count
    }

    /// Total enumerated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Summary statistics.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            depth: self.params.len(),
            nodes: self.nodes.len(),
            leaves: self.leaf_count(),
        }
    }

    /// Whether `cfg`'s values for this group trace a feasible path.
    pub fn contains(&self, cfg: &Configuration) -> bool {
        let mut children = &self.root_children;
        for (level, &p) in self.params.iter().enumerate() {
            let want = cfg.cval(p).idx();
            let Some(&next) = children
                .iter()
                .find(|&&c| self.nodes[c as usize].value == want)
            else {
                return false;
            };
            // Dead interior paths have leaf_count 0.
            if self.nodes[next as usize].leaf_count == 0 {
                return false;
            }
            if level + 1 == self.params.len() {
                return true;
            }
            children = &self.nodes[next as usize].children;
        }
        // Zero-parameter tree cannot occur (groups are nonempty).
        true
    }

    /// Samples a root-to-leaf path and writes it into `vals`.
    ///
    /// With `uniform == true` children are weighted by their leaf counts
    /// (bias-free leaf sampling); otherwise each child is equally likely
    /// (Rasch et al.'s biased walk).
    pub(crate) fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        uniform: bool,
        vals: &mut [CVal],
    ) {
        let mut children: Vec<u32> = self
            .root_children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c as usize].leaf_count > 0)
            .collect();
        for &p in &self.params {
            debug_assert!(!children.is_empty(), "sample_into on empty tree");
            let chosen = if uniform {
                let total: u64 = children.iter().map(|&c| self.nodes[c as usize].leaf_count).sum();
                let mut r = rng.gen_range(0..total);
                let mut pick = children[0];
                for &c in &children {
                    let lc = self.nodes[c as usize].leaf_count;
                    if r < lc {
                        pick = c;
                        break;
                    }
                    r -= lc;
                }
                pick
            } else {
                children[rng.gen_range(0..children.len())]
            };
            vals[p] = CVal::Idx(self.nodes[chosen as usize].value);
            children = self.nodes[chosen as usize]
                .children
                .iter()
                .copied()
                .filter(|&c| self.nodes[c as usize].leaf_count > 0)
                .collect();
        }
    }

    /// All root-to-leaf paths as value-index vectors (level order).
    /// Intended for tests and exhaustive enumeration of small trees.
    pub fn all_leaf_paths(&self) -> Vec<Vec<u64>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.walk(&self.root_children, &mut path, &mut out);
        out
    }

    fn walk(&self, children: &[u32], path: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        for &c in children {
            let node = &self.nodes[c as usize];
            if node.leaf_count == 0 {
                continue;
            }
            path.push(node.value);
            if path.len() == self.params.len() {
                out.push(path.clone());
            } else {
                self.walk(&node.children, path, out);
            }
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::space::SearchSpace;

    #[test]
    fn dead_interior_paths_are_pruned_from_membership() {
        // b has no feasible value when a == 2 (2*b must equal 5 — impossible),
        // so the a=2 interior node exists but has leaf_count 0.
        let space = SearchSpace::builder()
            .integer("a", 1, 2)
            .integer("b", 1, 4)
            .known_constraint("a * b == 2 || (a == 1 && b == 3)")
            .build()
            .unwrap();
        let cot = crate::cot::ChainOfTrees::build(&space).unwrap();
        // Feasible: (1,2), (2,1), (1,3).
        assert_eq!(cot.feasible_size(), 3.0);
        let listed = cot.enumerate(100).unwrap();
        assert_eq!(listed.len(), 3);
    }

    #[test]
    fn leaf_paths_cover_leaf_count() {
        let space = SearchSpace::builder()
            .integer("a", 0, 4)
            .integer("b", 0, 4)
            .known_constraint("a >= b")
            .build()
            .unwrap();
        let cot = crate::cot::ChainOfTrees::build(&space).unwrap();
        let t = &cot.trees()[0];
        assert_eq!(t.all_leaf_paths().len() as u64, t.leaf_count());
        assert_eq!(t.leaf_count(), 15); // 5+4+3+2+1
        assert_eq!(t.stats().depth, 2);
    }
}
