//! Chain-of-Trees (CoT): precomputed feasible sets for known constraints
//! (Sec. 4.2 of the paper, after Rasch et al.).
//!
//! Parameters are grouped into *co-dependent groups* (connected components of
//! the "shares a constraint" relation). Each group's feasible partial
//! configurations are enumerated into a tree whose levels correspond to the
//! group's parameters; any combination of root-to-leaf paths across groups is
//! a feasible configuration. The CoT supports
//!
//! * **bias-free sampling** ([`ChainOfTrees::sample_uniform`]) — uniform over
//!   leaves, BaCO's improvement over top-down sampling;
//! * **biased sampling** ([`ChainOfTrees::sample_biased`]) — Rasch et al.'s
//!   top-down uniform-child walk, kept as the `CoT sampling` baseline;
//! * **fast membership tests** ([`ChainOfTrees::contains`]) used instead of
//!   re-evaluating constraint expressions during local search.
//!
//! ```
//! use baco::cot::ChainOfTrees;
//! use baco::space::SearchSpace;
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder()
//!     .integer("a", 0, 7)
//!     .integer("b", 0, 7)
//!     .known_constraint("a >= b")
//!     .build()?;
//! let cot = ChainOfTrees::build(&space)?;
//! // 36 of the 64 grid points satisfy a >= b.
//! assert_eq!(cot.feasible_size(), 36.0);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let cfg = cot.sample_uniform(&mut rng);
//! assert!(cot.contains(&cfg));
//! # Ok::<(), baco::Error>(())
//! ```

mod tree;

pub use tree::{Tree, TreeStats};

use crate::space::{CVal, Configuration, SearchSpace};
use crate::{Error, Result};
use rand::Rng;

/// Default cap on enumerated tree nodes across all groups.
pub const DEFAULT_NODE_LIMIT: usize = 20_000_000;

/// The Chain-of-Trees over a (fully discrete) search space.
#[derive(Debug, Clone)]
pub struct ChainOfTrees {
    space: SearchSpace,
    trees: Vec<Tree>,
    /// Discrete parameters not referenced by any constraint.
    free_params: Vec<usize>,
    /// Real (continuous) parameters; sampled independently, never
    /// constrained.
    real_params: Vec<usize>,
}

impl ChainOfTrees {
    /// Builds the CoT with the [`DEFAULT_NODE_LIMIT`].
    ///
    /// # Errors
    /// See [`ChainOfTrees::build_with_limit`].
    pub fn build(space: &SearchSpace) -> Result<Self> {
        Self::build_with_limit(space, DEFAULT_NODE_LIMIT)
    }

    /// Builds the CoT, enumerating at most `node_limit` tree nodes.
    ///
    /// # Errors
    /// * [`Error::InvalidSpace`] if a known constraint references a
    ///   continuous parameter (the CoT requires finite domains).
    /// * [`Error::EmptyFeasibleSet`] if the constraints admit no
    ///   configuration.
    /// * [`Error::FeasibleSetTooLarge`] if enumeration exceeds `node_limit`.
    /// * Constraint-evaluation errors are treated as *infeasible* paths,
    ///   matching how a compiler rejects undefined schedules.
    pub fn build_with_limit(space: &SearchSpace, node_limit: usize) -> Result<Self> {
        // Constraints on continuous parameters are unsupported.
        for c in space.known_constraints() {
            for &p in c.params() {
                if !space.param(p).is_discrete() {
                    return Err(Error::InvalidSpace(format!(
                        "constraint `{}` references continuous parameter `{}`; \
                         the Chain-of-Trees requires discrete parameters",
                        c.name(),
                        space.param(p).name()
                    )));
                }
            }
        }

        // Constant constraints (no parameters) must hold.
        let default_cfg = space.default_configuration();
        for c in space.known_constraints() {
            if c.params().is_empty() && !c.eval(&default_cfg)? {
                return Err(Error::EmptyFeasibleSet);
            }
        }

        // Union-find over parameters sharing a constraint.
        let n = space.len();
        let mut uf = UnionFind::new(n);
        for c in space.known_constraints() {
            for w in c.params().windows(2) {
                uf.union(w[0], w[1]);
            }
        }

        // Collect groups (only discrete params that appear in ≥1 constraint).
        let mut group_of_root: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        let mut constrained = vec![false; n];
        for c in space.known_constraints() {
            for &p in c.params() {
                constrained[p] = true;
            }
        }
        for (p, is_constrained) in constrained.iter().enumerate().take(n) {
            if *is_constrained {
                group_of_root.entry(uf.find(p)).or_default().push(p);
            }
        }

        let mut groups: Vec<Vec<usize>> = group_of_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();

        let mut trees = Vec::with_capacity(groups.len());
        let mut budget = node_limit;
        for params in groups {
            // Constraints fully contained in this group.
            let constraints: Vec<usize> = space
                .known_constraints()
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    !c.params().is_empty() && c.params().iter().all(|p| params.contains(p))
                })
                .map(|(i, _)| i)
                .collect();
            let tree = Tree::enumerate(space, &params, &constraints, budget)?;
            budget = budget.saturating_sub(tree.node_count());
            if tree.leaf_count() == 0 {
                return Err(Error::EmptyFeasibleSet);
            }
            trees.push(tree);
        }

        let free_params = (0..n)
            .filter(|&p| !constrained[p] && space.param(p).is_discrete())
            .collect();
        let real_params = (0..n).filter(|&p| !space.param(p).is_discrete()).collect();

        Ok(ChainOfTrees {
            space: space.clone(),
            trees,
            free_params,
            real_params,
        })
    }

    /// The underlying search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The trees of the chain, one per co-dependent parameter group.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Discrete parameters unconstrained by any known constraint.
    pub fn free_params(&self) -> &[usize] {
        &self.free_params
    }

    /// Number of feasible configurations w.r.t. known constraints
    /// (continuous parameters excluded).
    ///
    /// Reported as `f64` because sizes can be astronomically large.
    pub fn feasible_size(&self) -> f64 {
        let mut s = 1.0f64;
        for t in &self.trees {
            s *= t.leaf_count() as f64;
        }
        for &p in &self.free_params {
            s *= self.space.param(p).domain_size().expect("free params are discrete") as f64;
        }
        s
    }

    /// Whether `cfg` satisfies all known constraints, via tree membership
    /// (no constraint expressions are re-evaluated).
    pub fn contains(&self, cfg: &Configuration) -> bool {
        self.trees.iter().all(|t| t.contains(cfg))
    }

    /// Samples uniformly over the feasible set (bias-free leaf sampling).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        self.sample_with(rng, true)
    }

    /// Samples with Rasch et al.'s top-down walk (uniform child at each
    /// node), which is biased towards sparse subtrees. Kept as a baseline.
    pub fn sample_biased<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        self.sample_with(rng, false)
    }

    fn sample_with<R: Rng + ?Sized>(&self, rng: &mut R, uniform: bool) -> Configuration {
        let mut vals: Vec<CVal> = self.space.default_configuration().cvals().to_vec();
        for t in &self.trees {
            t.sample_into(rng, uniform, &mut vals);
        }
        for &p in &self.free_params {
            let size = self.space.param(p).domain_size().expect("discrete");
            vals[p] = CVal::Idx(rng.gen_range(0..size));
        }
        for &p in &self.real_params {
            if let crate::space::ParamKind::Real { lo, hi } = self.space.param(p).kind() {
                vals[p] = CVal::Real(rng.gen_range(*lo..=*hi));
            }
        }
        self.space.config_from_cvals(vals)
    }

    /// Enumerates up to `max` feasible configurations (free/continuous
    /// parameters fixed at their defaults for the purpose of this listing
    /// unless fully enumerable).
    ///
    /// Intended for tests and small spaces; returns `None` if the feasible
    /// set (including free discrete parameters) exceeds `max`.
    pub fn enumerate(&self, max: usize) -> Option<Vec<Configuration>> {
        if !self.real_params.is_empty() {
            return None;
        }
        if self.feasible_size() > max as f64 {
            return None;
        }
        let base = self.space.default_configuration().cvals().to_vec();
        let mut acc: Vec<Vec<CVal>> = vec![base];
        for t in &self.trees {
            let paths = t.all_leaf_paths();
            let mut next = Vec::with_capacity(acc.len() * paths.len());
            for a in &acc {
                for path in &paths {
                    let mut v = a.clone();
                    for (p, val) in t.params().iter().zip(path) {
                        v[*p] = CVal::Idx(*val);
                    }
                    next.push(v);
                }
            }
            acc = next;
        }
        for &p in &self.free_params {
            let size = self.space.param(p).domain_size().expect("discrete");
            let mut next = Vec::with_capacity(acc.len() * size as usize);
            for a in &acc {
                for v in 0..size {
                    let mut x = a.clone();
                    x[p] = CVal::Idx(v);
                    next.push(x);
                }
            }
            acc = next;
        }
        Some(acc.into_iter().map(|v| self.space.config_from_cvals(v)).collect())
    }

    /// Per-tree statistics (for diagnostics and the Table 3 harness).
    pub fn stats(&self) -> Vec<TreeStats> {
        self.trees.iter().map(Tree::stats).collect()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    /// The example space from Fig. 4 of the paper.
    fn paper_space() -> SearchSpace {
        SearchSpace::builder()
            .ordinal("p1", vec![2.0, 4.0])
            .ordinal("p2", vec![2.0, 4.0])
            .ordinal("p3", vec![1.0, 4.0])
            .ordinal("p4", vec![1.0, 2.0, 4.0])
            .ordinal("p5", vec![2.0, 4.0, 8.0])
            .known_constraint("p1 >= p2")
            .known_constraint("p4 >= p3")
            .known_constraint("p5 >= 2 * p4")
            .build()
            .unwrap()
    }

    #[test]
    fn paper_example_groups_and_counts() {
        let cot = ChainOfTrees::build(&paper_space()).unwrap();
        // Two trees: {p1,p2} and {p3,p4,p5}.
        assert_eq!(cot.trees().len(), 2);
        // Tree 1 leaves: (2,2),(4,2),(4,4) = 3.
        assert_eq!(cot.trees()[0].leaf_count(), 3);
        // Tree 2 leaves: p3=1: p4∈{1,2,4} with p5≥2p4 → 1:{2,4,8}=3, 2:{4,8}=2,
        // 4:{8}=1 → 6; p3=4: p4=4, p5=8 → 1. Total 7.
        assert_eq!(cot.trees()[1].leaf_count(), 7);
        assert_eq!(cot.feasible_size(), 21.0);
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let space = paper_space();
        let cot = ChainOfTrees::build(&space).unwrap();
        let listed: HashSet<Configuration> =
            cot.enumerate(10_000).unwrap().into_iter().collect();
        // Brute force over the dense space.
        let mut brute = HashSet::new();
        for &p1 in &[2.0, 4.0] {
            for &p2 in &[2.0, 4.0] {
                for &p3 in &[1.0, 4.0] {
                    for &p4 in &[1.0, 2.0, 4.0] {
                        for &p5 in &[2.0, 4.0, 8.0] {
                            let cfg = space
                                .configuration(&[
                                    ("p1", ParamValue::Ordinal(p1)),
                                    ("p2", ParamValue::Ordinal(p2)),
                                    ("p3", ParamValue::Ordinal(p3)),
                                    ("p4", ParamValue::Ordinal(p4)),
                                    ("p5", ParamValue::Ordinal(p5)),
                                ])
                                .unwrap();
                            if space.satisfies_known(&cfg).unwrap() {
                                brute.insert(cfg);
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(listed, brute);
    }

    #[test]
    fn membership_agrees_with_constraints() {
        let space = paper_space();
        let cot = ChainOfTrees::build(&space).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let cfg = space.sample_dense(&mut rng);
            assert_eq!(cot.contains(&cfg), space.satisfies_known(&cfg).unwrap(), "{cfg}");
        }
    }

    #[test]
    fn uniform_sampling_covers_all_leaves_uniformly() {
        let space = paper_space();
        let cot = ChainOfTrees::build(&space).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts: std::collections::HashMap<Configuration, usize> = Default::default();
        let n = 21_000;
        for _ in 0..n {
            let cfg = cot.sample_uniform(&mut rng);
            assert!(cot.contains(&cfg));
            *counts.entry(cfg).or_default() += 1;
        }
        assert_eq!(counts.len(), 21, "all feasible configs should be hit");
        // Uniformity: each expected 1000, allow generous tolerance.
        for (cfg, c) in counts {
            assert!((600..1500).contains(&c), "count {c} for {cfg}");
        }
    }

    #[test]
    fn biased_sampling_is_feasible_but_nonuniform() {
        // A deliberately unbalanced tree: a=0 admits 1 leaf, a=1 admits 8.
        let space = SearchSpace::builder()
            .integer("a", 0, 1)
            .integer("b", 0, 7)
            .known_constraint("a == 1 || b == 0")
            .build()
            .unwrap();
        let cot = ChainOfTrees::build(&space).unwrap();
        assert_eq!(cot.feasible_size(), 9.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut a0 = 0usize;
        let n = 4000;
        for _ in 0..n {
            let cfg = cot.sample_biased(&mut rng);
            assert!(cot.contains(&cfg));
            if cfg.value("a").as_i64() == 0 {
                a0 += 1;
            }
        }
        // Top-down: P(a=0) = 1/2 ≫ 1/9 (uniform). Expect near 2000, not ~444.
        assert!(a0 > 1400, "biased sampler should over-sample sparse branch: {a0}");
        let mut u0 = 0usize;
        for _ in 0..n {
            if cot.sample_uniform(&mut rng).value("a").as_i64() == 0 {
                u0 += 1;
            }
        }
        assert!(u0 < 800, "uniform sampler should be leaf-proportional: {u0}");
    }

    #[test]
    fn empty_feasible_set_detected() {
        let space = SearchSpace::builder()
            .integer("a", 0, 3)
            .known_constraint("a > 5")
            .build()
            .unwrap();
        assert!(matches!(ChainOfTrees::build(&space), Err(Error::EmptyFeasibleSet)));
    }

    #[test]
    fn node_limit_respected() {
        let space = SearchSpace::builder()
            .integer("a", 0, 99)
            .integer("b", 0, 99)
            .known_constraint("a + b >= 0")
            .build()
            .unwrap();
        assert!(matches!(
            ChainOfTrees::build_with_limit(&space, 50),
            Err(Error::FeasibleSetTooLarge { .. })
        ));
    }

    #[test]
    fn continuous_constraint_rejected() {
        let space = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .known_constraint("x > 0.5")
            .build()
            .unwrap();
        assert!(matches!(ChainOfTrees::build(&space), Err(Error::InvalidSpace(_))));
    }

    #[test]
    fn free_and_real_params_sampled() {
        let space = SearchSpace::builder()
            .integer("a", 0, 3)
            .integer("b", 0, 3)
            .real("x", 0.0, 1.0)
            .categorical("c", vec!["u", "v"])
            .known_constraint("a >= b")
            .build()
            .unwrap();
        let cot = ChainOfTrees::build(&space).unwrap();
        assert_eq!(cot.free_params(), &[3]); // c (x is continuous)
        assert_eq!(cot.feasible_size(), 10.0 * 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let cfg = cot.sample_uniform(&mut rng);
            assert!(space.satisfies_known(&cfg).unwrap());
            let x = cfg.value("x").as_f64();
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn permutation_constraints_via_pos() {
        let space = SearchSpace::builder()
            .permutation("ord", 4)
            .known_constraint("pos(ord, 0) < pos(ord, 1)")
            .build()
            .unwrap();
        let cot = ChainOfTrees::build(&space).unwrap();
        // Exactly half of the 24 permutations keep 0 before 1.
        assert_eq!(cot.feasible_size(), 12.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let cfg = cot.sample_uniform(&mut rng);
            let p = cfg.value("ord");
            let p = p.as_permutation();
            let pos0 = p.iter().position(|&e| e == 0).unwrap();
            let pos1 = p.iter().position(|&e| e == 1).unwrap();
            assert!(pos0 < pos1);
        }
    }

    #[test]
    fn unconstrained_space_has_no_trees() {
        let space = SearchSpace::builder().integer("a", 0, 9).build().unwrap();
        let cot = ChainOfTrees::build(&space).unwrap();
        assert!(cot.trees().is_empty());
        assert_eq!(cot.feasible_size(), 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cot.sample_uniform(&mut rng);
        assert!(cot.contains(&cfg));
    }
}
