use std::fmt;

/// Errors produced by the BaCO framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A search space was declared inconsistently (duplicate names, empty
    /// domains, malformed bounds, …).
    InvalidSpace(String),
    /// A known-constraint expression failed to parse.
    ConstraintParse(String),
    /// A constraint references a parameter that does not exist.
    UnknownParameter(String),
    /// A constraint expression could not be evaluated on a configuration
    /// (type mismatch, division by zero, …).
    ConstraintEval(String),
    /// The known constraints admit no feasible configuration.
    EmptyFeasibleSet,
    /// The feasible set is too large to enumerate into a Chain-of-Trees.
    FeasibleSetTooLarge {
        /// Number of partial configurations reached before giving up.
        limit: usize,
    },
    /// Numerical failure inside a surrogate model (non-SPD kernel matrix, …).
    Numerical(String),
    /// The tuner was configured inconsistently (zero budget, …).
    InvalidConfig(String),
    /// A configuration refers to a parameter value outside its domain.
    InvalidValue(String),
    /// A reported evaluation claimed feasibility while carrying a NaN/±inf
    /// objective. Non-finite "measurements" are rejected at every ingestion
    /// path — they would survive the log transform as impossibly good
    /// observations and poison the surrogate.
    NonFiniteObjective(String),
    /// A reported evaluation carried a different number of objectives than
    /// the tuner was configured for — a mixed-width history would corrupt
    /// Pareto-front bookkeeping (mismatched vectors are incomparable) while
    /// being silently invisible to the per-objective models.
    ObjectiveCountMismatch {
        /// Objectives the evaluation carried.
        got: usize,
        /// Objectives the tuner tunes ([`BacoOptions::objectives`](crate::tuner::BacoOptions)).
        expected: usize,
    },
    /// A run-journal I/O operation failed (open, append, fsync, …).
    Io(String),
    /// A run journal could not be decoded: truncated mid-stream, a corrupt
    /// or garbage record, or a header incompatible with the resuming tuner.
    /// `line` is 1-based; `0` marks whole-file problems (empty, no header).
    JournalCorrupt {
        /// 1-based journal line of the offending record (0 = whole file).
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A tuning-server request named a session the registry does not hold.
    UnknownSession(String),
    /// A tuning-server request tried to create a session under a name the
    /// registry already holds.
    SessionExists(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSpace(m) => write!(f, "invalid search space: {m}"),
            Error::ConstraintParse(m) => write!(f, "constraint parse error: {m}"),
            Error::UnknownParameter(m) => write!(f, "unknown parameter: {m}"),
            Error::ConstraintEval(m) => write!(f, "constraint evaluation error: {m}"),
            Error::EmptyFeasibleSet => write!(f, "known constraints admit no feasible configuration"),
            Error::FeasibleSetTooLarge { limit } => {
                write!(f, "feasible set exceeds enumeration limit of {limit} nodes")
            }
            Error::Numerical(m) => write!(f, "numerical error: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid tuner configuration: {m}"),
            Error::InvalidValue(m) => write!(f, "invalid parameter value: {m}"),
            Error::NonFiniteObjective(m) => write!(f, "non-finite objective: {m}"),
            Error::ObjectiveCountMismatch { got, expected } => write!(
                f,
                "objective count mismatch: evaluation carries {got} objective(s), tuner expects {expected}"
            ),
            Error::Io(m) => write!(f, "journal I/O error: {m}"),
            Error::JournalCorrupt { line, msg } => {
                write!(f, "corrupt run journal (line {line}): {msg}")
            }
            Error::UnknownSession(name) => write!(f, "unknown session `{name}`"),
            Error::SessionExists(name) => write!(f, "session `{name}` already exists"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            Error::InvalidSpace("dup".into()),
            Error::ConstraintParse("bad token".into()),
            Error::UnknownParameter("p9".into()),
            Error::ConstraintEval("type mismatch".into()),
            Error::EmptyFeasibleSet,
            Error::FeasibleSetTooLarge { limit: 10 },
            Error::Numerical("cholesky".into()),
            Error::InvalidConfig("budget".into()),
            Error::InvalidValue("7".into()),
            Error::NonFiniteObjective("NaN".into()),
            Error::ObjectiveCountMismatch { got: 1, expected: 2 },
            Error::Io("open failed".into()),
            Error::JournalCorrupt { line: 3, msg: "bad record".into() },
            Error::UnknownSession("s1".into()),
            Error::SessionExists("s1".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
