//! ATF with OpenTuner (Sec. 5.1): OpenTuner's ensemble of search techniques
//! coordinated by a sliding-window AUC bandit, extended with ATF's known-
//! constraint support (all proposals are drawn from / checked against the
//! feasible set).
//!
//! The ensemble mirrors OpenTuner's default `AUCBanditMetaTechnique`:
//! greedy hill-climbing, pattern-style numeric moves, random mutation, and
//! uniform restarts. Techniques earn credit when their proposal improves the
//! global best; the bandit balances that credit with an exploration bonus.

use super::timed_trial;
use crate::search::{neighbors, FeasibleSampler};
use crate::space::{CVal, Configuration, ParamKind, SearchSpace};
use crate::tuner::{BlackBox, TuningReport};
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Options for [`AtfTuner`].
#[derive(Debug, Clone, Copy)]
pub struct AtfOptions {
    /// Evaluation budget.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
    /// Sliding window of technique outcomes feeding the AUC credit.
    pub window: usize,
    /// Exploration constant of the UCB term.
    pub exploration: f64,
}

impl Default for AtfOptions {
    fn default() -> Self {
        AtfOptions {
            budget: 60,
            seed: 0,
            window: 50,
            exploration: 1.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Technique {
    HillClimb,
    Pattern,
    Mutate,
    Restart,
}

const TECHNIQUES: [Technique; 4] = [
    Technique::HillClimb,
    Technique::Pattern,
    Technique::Mutate,
    Technique::Restart,
];

/// The ATF/OpenTuner baseline tuner.
#[derive(Debug)]
pub struct AtfTuner {
    space: SearchSpace,
    sampler: FeasibleSampler,
    opts: AtfOptions,
}

impl AtfTuner {
    /// Builds the tuner.
    ///
    /// # Errors
    /// Propagates Chain-of-Trees construction failures.
    pub fn new(space: &SearchSpace, opts: AtfOptions) -> Result<Self> {
        Ok(AtfTuner {
            space: space.clone(),
            sampler: FeasibleSampler::new(space)?,
            opts,
        })
    }

    /// Convenience constructor with default bandit settings.
    ///
    /// # Errors
    /// Propagates Chain-of-Trees construction failures.
    pub fn with_budget(space: &SearchSpace, budget: usize, seed: u64) -> Result<Self> {
        Self::new(
            space,
            AtfOptions {
                budget,
                seed,
                ..Default::default()
            },
        )
    }

    fn propose<R: Rng + ?Sized>(
        &self,
        tech: Technique,
        best: Option<&Configuration>,
        rng: &mut R,
        seen: &HashSet<Configuration>,
    ) -> Option<Configuration> {
        let base = match best {
            Some(b) => b.clone(),
            None => return self.fresh(rng, seen),
        };
        let cand = match tech {
            Technique::Restart => return self.fresh(rng, seen),
            Technique::HillClimb => {
                // A random feasible unseen neighbor of the incumbent.
                let mut nbs = neighbors(&self.space, &base);
                // Shuffle for a random pick without allocating a distribution.
                for i in (1..nbs.len()).rev() {
                    nbs.swap(i, rng.gen_range(0..=i));
                }
                nbs.into_iter()
                    .find(|n| self.sampler.contains(n) && !seen.contains(n))
            }
            Technique::Pattern => {
                // Move ±k on one numeric parameter (k geometric).
                let numeric: Vec<usize> = self
                    .space
                    .params()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        matches!(p.kind(), ParamKind::Integer { .. } | ParamKind::Ordinal { .. })
                    })
                    .map(|(i, _)| i)
                    .collect();
                if numeric.is_empty() {
                    None
                } else {
                    let mut found = None;
                    for _ in 0..16 {
                        let pi = numeric[rng.gen_range(0..numeric.len())];
                        let size = self.space.param(pi).domain_size().expect("discrete") as i64;
                        let cur = base.cval(pi).idx() as i64;
                        let mut k = 1i64;
                        while rng.gen_bool(0.5) && k < size {
                            k *= 2;
                        }
                        let dir = if rng.gen_bool(0.5) { 1 } else { -1 };
                        let nv = (cur + dir * k).clamp(0, size - 1);
                        let cand = base.with_cval(pi, CVal::Idx(nv as u64));
                        if cand != base && self.sampler.contains(&cand) && !seen.contains(&cand) {
                            found = Some(cand);
                            break;
                        }
                    }
                    found
                }
            }
            Technique::Mutate => {
                // Resample a geometric number of parameters uniformly.
                let d = self.space.len();
                let mut found = None;
                for _ in 0..16 {
                    let mut cand = base.clone();
                    let mut k = 1;
                    while rng.gen_bool(0.3) && k < d {
                        k += 1;
                    }
                    for _ in 0..k {
                        let pi = rng.gen_range(0..d);
                        match self.space.param(pi).kind() {
                            ParamKind::Real { lo, hi } => {
                                cand.set_cval(pi, CVal::Real(rng.gen_range(*lo..=*hi)));
                            }
                            kind => {
                                let size = kind.domain_size().expect("discrete");
                                cand.set_cval(pi, CVal::Idx(rng.gen_range(0..size)));
                            }
                        }
                    }
                    if cand != base && self.sampler.contains(&cand) && !seen.contains(&cand) {
                        found = Some(cand);
                        break;
                    }
                }
                found
            }
        };
        cand.or_else(|| self.fresh(rng, seen))
    }

    fn fresh<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        seen: &HashSet<Configuration>,
    ) -> Option<Configuration> {
        for _ in 0..2000 {
            let cfg = self.sampler.sample(rng);
            if !seen.contains(&cfg) {
                return Some(cfg);
            }
        }
        None
    }
}

impl super::Tuner for AtfTuner {
    fn name(&self) -> &str {
        "ATF"
    }

    fn run(&mut self, bb: &dyn BlackBox) -> Result<TuningReport> {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut report = TuningReport::new(self.name());
        let mut seen: HashSet<Configuration> = HashSet::new();
        // Sliding window of (technique index, improved?) outcomes.
        let mut window: VecDeque<(usize, bool)> = VecDeque::with_capacity(self.opts.window);
        let mut uses = [0usize; TECHNIQUES.len()];
        let mut best: Option<(f64, Configuration)> = None;

        while report.len() < self.opts.budget {
            let t0 = Instant::now();
            // AUC-credit bandit selection.
            let t_total = report.len().max(1) as f64;
            let mut pick = 0;
            let mut pick_score = f64::NEG_INFINITY;
            for (ti, _) in TECHNIQUES.iter().enumerate() {
                let score = if uses[ti] == 0 {
                    f64::INFINITY
                } else {
                    // AUC: recency-weighted improvements within the window.
                    let mut auc = 0.0;
                    let mut weight_sum = 0.0;
                    for (age, (wt, improved)) in window.iter().rev().enumerate() {
                        if *wt == ti {
                            let w = (self.opts.window - age) as f64;
                            weight_sum += w;
                            if *improved {
                                auc += w;
                            }
                        }
                    }
                    let exploit = if weight_sum > 0.0 { auc / weight_sum } else { 0.0 };
                    exploit
                        + self.opts.exploration * (2.0 * t_total.ln() / uses[ti] as f64).sqrt()
                };
                if score > pick_score {
                    pick_score = score;
                    pick = ti;
                }
            }

            let Some(cfg) =
                self.propose(TECHNIQUES[pick], best.as_ref().map(|(_, c)| c), &mut rng, &seen)
            else {
                break;
            };
            seen.insert(cfg.clone());
            let tuner_time = t0.elapsed();
            let trial = timed_trial(bb, cfg, tuner_time);

            let improved = match (trial.feasible, trial.value, &best) {
                (true, Some(v), Some((b, _))) => v < *b,
                (true, Some(_), None) => true,
                _ => false,
            };
            if improved {
                best = Some((trial.value.unwrap(), trial.config.clone()));
            }
            uses[pick] += 1;
            if window.len() == self.opts.window {
                window.pop_front();
            }
            window.push_back((pick, improved));
            report.push(trial);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Tuner;
    use crate::tuner::{Evaluation, FnBlackBox};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .integer("a", 0, 31)
            .integer("b", 0, 31)
            .known_constraint("a >= b")
            .build()
            .unwrap()
    }

    #[test]
    fn exploits_towards_optimum() {
        let bb = FnBlackBox::new(|c: &Configuration| {
            let a = c.value("a").as_f64();
            let b = c.value("b").as_f64();
            Evaluation::feasible(1.0 + (a - 20.0).abs() + (b - 20.0).abs())
        });
        let mut t = AtfTuner::with_budget(&space(), 80, 3).unwrap();
        let r = t.run(&bb).unwrap();
        assert_eq!(r.len(), 80);
        assert!(r.best_value().unwrap() <= 6.0, "best {:?}", r.best_value());
        // All proposals feasible and unique.
        let uniq: HashSet<_> = r.trials().iter().map(|t| t.config.clone()).collect();
        assert_eq!(uniq.len(), 80);
        for trial in r.trials() {
            assert!(trial.config.value("a").as_i64() >= trial.config.value("b").as_i64());
        }
    }

    #[test]
    fn survives_hidden_constraint_failures() {
        let bb = FnBlackBox::new(|c: &Configuration| {
            let a = c.value("a").as_i64();
            if a % 2 == 1 {
                Evaluation::infeasible()
            } else {
                Evaluation::feasible(1.0 + a as f64)
            }
        });
        let mut t = AtfTuner::with_budget(&space(), 60, 5).unwrap();
        let r = t.run(&bb).unwrap();
        // Best feasible values are 1, 3, 5, … (even `a` only); the heuristic
        // should land close to the bottom.
        assert!(r.best_value().unwrap() <= 5.0, "best {:?}", r.best_value());
    }

    #[test]
    fn deterministic_under_seed() {
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("a").as_f64() + 1.0)
        });
        let run = |seed| {
            let mut t = AtfTuner::with_budget(&space(), 25, seed).unwrap();
            t.run(&bb)
                .unwrap()
                .trials()
                .iter()
                .map(|t| t.config.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
