//! The Ytopt baseline (Sec. 5.1): skopt-style Bayesian optimization with a
//! random-forest surrogate (optionally a plain GP for the RQ3 comparison),
//! EI optimized by scoring random candidates, and hidden-constraint failures
//! "added to the data set with a high objective value" — the penalty approach
//! BaCO's feasibility model replaces.

use super::timed_trial;
use crate::acquisition::expected_improvement;
use crate::search::FeasibleSampler;
use crate::space::{Configuration, SearchSpace};
use crate::surrogate::{GaussianProcess, GpOptions, RandomForestRegressor, RfOptions};
use crate::tuner::{BlackBox, TuningReport};
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::Instant;

/// Which surrogate Ytopt runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum YtoptSurrogate {
    /// Random forest (Ytopt's default in the paper's experiments).
    #[default]
    RandomForest,
    /// An untuned, off-the-shelf GP (the `Ytopt (GP)` arm of Fig. 8: no
    /// custom distances, no priors, no input transforms).
    GaussianProcess,
}

/// Options for [`YtoptTuner`].
#[derive(Debug, Clone)]
pub struct YtoptOptions {
    /// Evaluation budget.
    pub budget: usize,
    /// Initial random samples.
    pub doe_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Surrogate choice.
    pub surrogate: YtoptSurrogate,
    /// Penalty multiplier for infeasible observations (× worst feasible).
    pub penalty_factor: f64,
    /// Random candidates scored per iteration.
    pub n_candidates: usize,
    /// Random-forest settings.
    pub rf: RfOptions,
}

impl Default for YtoptOptions {
    fn default() -> Self {
        YtoptOptions {
            budget: 60,
            doe_samples: 10,
            seed: 0,
            surrogate: YtoptSurrogate::RandomForest,
            penalty_factor: 10.0,
            n_candidates: 500,
            rf: RfOptions::default(),
        }
    }
}

/// The Ytopt-style baseline tuner.
#[derive(Debug)]
pub struct YtoptTuner {
    space: SearchSpace,
    sampler: FeasibleSampler,
    opts: YtoptOptions,
}

impl YtoptTuner {
    /// Builds the tuner.
    ///
    /// # Errors
    /// Propagates Chain-of-Trees construction failures.
    pub fn new(space: &SearchSpace, opts: YtoptOptions) -> Result<Self> {
        Ok(YtoptTuner {
            space: space.clone(),
            sampler: FeasibleSampler::new(space)?,
            opts,
        })
    }

    /// Convenience constructor with defaults.
    ///
    /// # Errors
    /// Propagates Chain-of-Trees construction failures.
    pub fn with_budget(space: &SearchSpace, budget: usize, seed: u64) -> Result<Self> {
        Self::new(
            space,
            YtoptOptions {
                budget,
                seed,
                ..Default::default()
            },
        )
    }
}

impl super::Tuner for YtoptTuner {
    fn name(&self) -> &str {
        match self.opts.surrogate {
            YtoptSurrogate::RandomForest => "Ytopt",
            YtoptSurrogate::GaussianProcess => "Ytopt (GP)",
        }
    }

    fn run(&mut self, bb: &dyn BlackBox) -> Result<TuningReport> {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut report = TuningReport::new(self.name());
        let mut seen: HashSet<Configuration> = HashSet::new();

        // DoE phase.
        let doe = crate::search::doe_sample(
            &self.sampler,
            &mut rng,
            self.opts.doe_samples.min(self.opts.budget),
            &seen,
        );
        for cfg in doe {
            seen.insert(cfg.clone());
            report.push(timed_trial(bb, cfg, std::time::Duration::ZERO));
        }

        while report.len() < self.opts.budget {
            let t0 = Instant::now();
            // Labels: measured values, with penalties standing in for
            // hidden-constraint failures.
            let worst_feasible = report
                .trials()
                .iter()
                .filter_map(|t| t.value)
                .fold(f64::NEG_INFINITY, f64::max);
            let penalty = if worst_feasible.is_finite() {
                worst_feasible.abs().max(1.0) * self.opts.penalty_factor
            } else {
                1e9
            };
            let (configs, labels): (Vec<Configuration>, Vec<f64>) = report
                .trials()
                .iter()
                .map(|t| (t.config.clone(), t.value.unwrap_or(penalty)))
                .unzip();

            let next = if configs.len() < 2 {
                None
            } else {
                let incumbent = labels.iter().copied().fold(f64::INFINITY, f64::min);
                enum M {
                    Rf(RandomForestRegressor),
                    Gp(Box<GaussianProcess>),
                }
                let model = match self.opts.surrogate {
                    YtoptSurrogate::RandomForest => M::Rf(RandomForestRegressor::fit(
                        &self.space,
                        &configs,
                        &labels,
                        &self.opts.rf,
                        &mut rng,
                    )?),
                    YtoptSurrogate::GaussianProcess => M::Gp(Box::new(GaussianProcess::fit(
                        &self.space,
                        &configs,
                        &labels,
                        // Off-the-shelf GP: none of BaCO's customizations.
                        &GpOptions::baco_minus_minus(),
                        &mut rng,
                    )?)),
                };
                let mut best: Option<(f64, Configuration)> = None;
                for _ in 0..self.opts.n_candidates {
                    let cfg = self.sampler.sample(&mut rng);
                    if seen.contains(&cfg) {
                        continue;
                    }
                    let (m, v) = match &model {
                        M::Rf(rf) => rf.predict_config(&self.space, &cfg),
                        M::Gp(gp) => gp.predict(&cfg),
                    };
                    let ei = expected_improvement(m, v, incumbent);
                    if best.as_ref().is_none_or(|(b, _)| ei > *b) {
                        best = Some((ei, cfg));
                    }
                }
                best.map(|(_, c)| c)
            };

            let cfg = match next {
                Some(c) => c,
                None => {
                    // Random fallback.
                    let mut found = None;
                    for _ in 0..2000 {
                        let cfg = self.sampler.sample(&mut rng);
                        if !seen.contains(&cfg) {
                            found = Some(cfg);
                            break;
                        }
                    }
                    match found {
                        Some(c) => c,
                        None => break,
                    }
                }
            };
            seen.insert(cfg.clone());
            let tuner_time = t0.elapsed();
            report.push(timed_trial(bb, cfg, tuner_time));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Tuner;
    use crate::tuner::{Evaluation, FnBlackBox};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .integer("a", 0, 31)
            .integer("b", 0, 31)
            .build()
            .unwrap()
    }

    #[test]
    fn optimizes_smooth_objective() {
        let bb = FnBlackBox::new(|c: &Configuration| {
            let a = c.value("a").as_f64();
            let b = c.value("b").as_f64();
            Evaluation::feasible(1.0 + (a - 7.0).powi(2) + (b - 25.0).powi(2))
        });
        let mut t = YtoptTuner::with_budget(&space(), 50, 2).unwrap();
        let r = t.run(&bb).unwrap();
        assert_eq!(r.len(), 50);
        assert!(r.best_value().unwrap() < 40.0, "best {:?}", r.best_value());
    }

    #[test]
    fn penalty_handles_hidden_failures() {
        let bb = FnBlackBox::new(|c: &Configuration| {
            let a = c.value("a").as_i64();
            if a > 15 {
                Evaluation::infeasible()
            } else {
                Evaluation::feasible((16 - a) as f64)
            }
        });
        let mut t = YtoptTuner::with_budget(&space(), 40, 4).unwrap();
        let r = t.run(&bb).unwrap();
        assert!(r.best_value().unwrap() <= 4.0);
    }

    #[test]
    fn gp_mode_runs() {
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(1.0 + c.value("a").as_f64())
        });
        let mut t = YtoptTuner::new(
            &space(),
            YtoptOptions {
                budget: 20,
                seed: 1,
                surrogate: YtoptSurrogate::GaussianProcess,
                ..Default::default()
            },
        )
        .unwrap();
        let r = t.run(&bb).unwrap();
        assert_eq!(r.tuner_name(), "Ytopt (GP)");
        assert!(r.best_value().unwrap() <= 4.0);
    }
}
