//! The reference autotuners of Sec. 5.1, reimplemented from their published
//! descriptions: ATF/OpenTuner (a bandit over local-search techniques with
//! known-constraint support), Ytopt (random-forest BO with penalty handling
//! of hidden-constraint failures), and the two random-sampling baselines.
//!
//! Every baseline implements the same [`Tuner`] trait, so the experiment
//! harness sweeps them uniformly against any [`BlackBox`]:
//!
//! ```
//! use baco::baselines::{Tuner, UniformSampler};
//! use baco::prelude::*;
//!
//! let space = SearchSpace::builder().integer("x", 0, 31).build()?;
//! let bb = FnBlackBox::new(|c: &Configuration| {
//!     Evaluation::feasible(c.value("x").as_f64() + 1.0)
//! });
//! let mut uniform = UniformSampler::new(&space, 16, 7)?;
//! let report = uniform.run(&bb)?;
//! assert_eq!(report.len(), 16);
//! assert!(report.best_value().unwrap() >= 1.0);
//! # Ok::<(), baco::Error>(())
//! ```

mod atf;
mod ytopt;

pub use atf::{AtfOptions, AtfTuner};
pub use ytopt::{YtoptOptions, YtoptSurrogate, YtoptTuner};

use crate::search::FeasibleSampler;
use crate::space::{Configuration, SearchSpace};
use crate::tuner::{Baco, BlackBox, Trial, TuningReport};
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// A uniform interface over BaCO and every baseline, so the experiment
/// harness can sweep them interchangeably.
pub trait Tuner {
    /// Display name used in tables and figures.
    fn name(&self) -> &str;

    /// Runs the tuner's full budget against `bb`.
    ///
    /// # Errors
    /// Model-fitting or constraint-handling failures, depending on the tuner.
    fn run(&mut self, bb: &dyn BlackBox) -> Result<TuningReport>;
}

impl Tuner for Baco {
    fn name(&self) -> &str {
        "BaCO"
    }

    fn run(&mut self, bb: &dyn BlackBox) -> Result<TuningReport> {
        Baco::run(self, bb)
    }
}

pub(crate) fn timed_trial(bb: &dyn BlackBox, cfg: Configuration, tuner_time: Duration) -> Trial {
    let t0 = Instant::now();
    let eval = bb.evaluate(&cfg);
    Trial {
        config: cfg,
        value: eval.value(),
        extra: eval.extra_objectives(),
        feasible: eval.is_feasible(),
        eval_time: t0.elapsed(),
        tuner_time,
    }
}

/// Uniform random sampling over the *feasible* set (bias-free): the
/// `Uniform Sampling` baseline of Sec. 5.1.
#[derive(Debug)]
pub struct UniformSampler {
    sampler: FeasibleSampler,
    budget: usize,
    seed: u64,
}

impl UniformSampler {
    /// Builds the sampler.
    ///
    /// # Errors
    /// Propagates Chain-of-Trees construction failures.
    pub fn new(space: &SearchSpace, budget: usize, seed: u64) -> Result<Self> {
        Ok(UniformSampler {
            sampler: FeasibleSampler::new(space)?,
            budget,
            seed,
        })
    }
}

impl Tuner for UniformSampler {
    fn name(&self) -> &str {
        "Uniform"
    }

    fn run(&mut self, bb: &dyn BlackBox) -> Result<TuningReport> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut report = TuningReport::new(self.name());
        let mut seen = HashSet::new();
        while report.len() < self.budget {
            let t0 = Instant::now();
            let mut cfg = self.sampler.sample(&mut rng);
            let mut guard = 0;
            while seen.contains(&cfg) && guard < 1000 {
                cfg = self.sampler.sample(&mut rng);
                guard += 1;
            }
            if seen.contains(&cfg) {
                break; // space exhausted
            }
            seen.insert(cfg.clone());
            let tuner_time = t0.elapsed();
            report.push(timed_trial(bb, cfg, tuner_time));
        }
        Ok(report)
    }
}

/// Rasch et al.'s biased top-down CoT walk: the `CoT Sampling` baseline used
/// to study the sampling bias (Sec. 4.2 / Sec. 5.1).
#[derive(Debug)]
pub struct CotSampler {
    sampler: FeasibleSampler,
    budget: usize,
    seed: u64,
}

impl CotSampler {
    /// Builds the sampler.
    ///
    /// # Errors
    /// Fails when the space is not fully discrete (the CoT walk needs trees)
    /// or CoT construction fails.
    pub fn new(space: &SearchSpace, budget: usize, seed: u64) -> Result<Self> {
        let sampler = FeasibleSampler::new(space)?;
        if sampler.cot().is_none() {
            return Err(crate::Error::InvalidConfig(
                "CoT sampling requires a fully discrete space".into(),
            ));
        }
        Ok(CotSampler {
            sampler,
            budget,
            seed,
        })
    }
}

impl Tuner for CotSampler {
    fn name(&self) -> &str {
        "CoT"
    }

    fn run(&mut self, bb: &dyn BlackBox) -> Result<TuningReport> {
        let cot = self.sampler.cot().expect("checked in constructor");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut report = TuningReport::new(self.name());
        let mut seen = HashSet::new();
        while report.len() < self.budget {
            let t0 = Instant::now();
            let mut cfg = cot.sample_biased(&mut rng);
            let mut guard = 0;
            while seen.contains(&cfg) && guard < 1000 {
                cfg = cot.sample_biased(&mut rng);
                guard += 1;
            }
            if seen.contains(&cfg) {
                break;
            }
            seen.insert(cfg.clone());
            let tuner_time = t0.elapsed();
            report.push(timed_trial(bb, cfg, tuner_time));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{Evaluation, FnBlackBox};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .integer("a", 0, 9)
            .integer("b", 0, 9)
            .known_constraint("a >= b")
            .build()
            .unwrap()
    }

    fn bb() -> FnBlackBox<impl Fn(&Configuration) -> Evaluation> {
        FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(1.0 + c.value("a").as_f64() - c.value("b").as_f64())
        })
    }

    #[test]
    fn uniform_sampler_runs_budget_feasibly() {
        let mut t = UniformSampler::new(&space(), 30, 1).unwrap();
        let r = t.run(&bb()).unwrap();
        assert_eq!(r.len(), 30);
        for trial in r.trials() {
            assert!(trial.config.value("a").as_i64() >= trial.config.value("b").as_i64());
        }
        // No duplicates.
        let uniq: HashSet<_> = r.trials().iter().map(|t| t.config.clone()).collect();
        assert_eq!(uniq.len(), 30);
    }

    #[test]
    fn cot_sampler_runs_budget_feasibly() {
        let mut t = CotSampler::new(&space(), 30, 2).unwrap();
        let r = t.run(&bb()).unwrap();
        assert_eq!(r.len(), 30);
        assert!(r.best_value().unwrap() >= 1.0);
    }

    #[test]
    fn cot_sampler_rejects_continuous_space() {
        let s = SearchSpace::builder().real("x", 0.0, 1.0).build().unwrap();
        assert!(CotSampler::new(&s, 5, 0).is_err());
    }

    #[test]
    fn samplers_exhaust_small_spaces_gracefully() {
        let s = SearchSpace::builder().integer("a", 0, 3).build().unwrap();
        let f = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("a").as_f64() + 1.0)
        });
        let mut t = UniformSampler::new(&s, 100, 3).unwrap();
        let r = t.run(&f).unwrap();
        assert!(r.len() <= 4 + 1);
        assert_eq!(r.best_value(), Some(1.0));
    }
}
