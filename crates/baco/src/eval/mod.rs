//! Concurrent black-box evaluation: the worker [`pool`] that keeps a round
//! of batched proposals in flight simultaneously.
//!
//! The tuner side of BaCO is CPU-bound and deterministic; the *evaluation*
//! side (compile + run a candidate schedule) is slow, often blocking, and
//! embarrassingly parallel across candidates. This module owns that side:
//! [`pool::evaluate_stream`] fans a round of configurations out over scoped
//! worker threads and hands results back to the caller **in completion
//! order**, so the tuning loop can fold fast evaluations into its model
//! while slow ones are still running.
//!
//! ```
//! use baco::eval::pool::evaluate_batch;
//! use baco::prelude::*;
//!
//! let space = SearchSpace::builder().integer("x", 0, 7).build()?;
//! let bb = FnBlackBox::new(|c: &Configuration| {
//!     Evaluation::feasible(c.value("x").as_f64())
//! });
//! let cfgs: Vec<Configuration> =
//!     (0..4).map(|_| space.default_configuration()).collect();
//! let results = evaluate_batch(&bb, cfgs, 2);
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|(_, e)| e.value() == Some(0.0)));
//! # Ok::<(), baco::Error>(())
//! ```

pub mod pool;

pub use pool::{evaluate_batch, evaluate_stream, BatchOutcome};
