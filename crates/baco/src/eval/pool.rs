//! The scoped worker pool that evaluates one round of configurations
//! concurrently.
//!
//! Built on the same primitives as [`crate::parallel`] — `std::thread::scope`
//! plus an atomic work cursor, since `rayon` is unavailable in the offline
//! build — but with one crucial difference: results are *streamed* through a
//! channel in **completion order** instead of being collected in input order.
//! A tuning loop driving [`evaluate_stream`] therefore observes evaluations
//! exactly as a real build farm would deliver them: out of order, fastest
//! first. Order-sensitive callers use [`evaluate_batch`], which re-sorts by
//! submission index.
//!
//! With one worker (or one configuration) both entry points degenerate to
//! plain in-line evaluation in submission order — this is what keeps
//! batch-size-1 runs of the batched engine bit-identical to the sequential
//! loop.
//!
//! A **panicking** black box is contained: the panic is caught on the worker
//! (or inline) path and surfaced as a hidden-constraint infeasible outcome —
//! every submitted configuration still produces exactly one result, the
//! collector never deadlocks, and the run continues (see BaCO's failed-run
//! semantics, Sec. 4.2). Run journaling ([`crate::journal`]) records trials in the order
//! this pool *completes* them, so a resumed journal replays the round as it
//! actually unfolded; with `threads <= 1` completion order is submission
//! order, which extends the resume-anywhere bitwise guarantee to any batch
//! size.
//!
//! ```
//! use baco::eval::pool::evaluate_stream;
//! use baco::prelude::*;
//!
//! let space = SearchSpace::builder().integer("x", 0, 7).build()?;
//! let bb = FnBlackBox::new(|c: &Configuration| {
//!     Evaluation::feasible(c.value("x").as_f64() + 1.0)
//! });
//! let cfgs = vec![space.default_configuration(); 3];
//! let mut best = f64::INFINITY;
//! evaluate_stream(&bb, cfgs, 2, |outcome| {
//!     // Results arrive as they complete; fold them in immediately.
//!     if let Some(v) = outcome.evaluation.value() {
//!         best = best.min(v);
//!     }
//! });
//! assert_eq!(best, 1.0);
//! # Ok::<(), baco::Error>(())
//! ```

use crate::parallel::effective_threads;
use crate::space::Configuration;
use crate::tuner::{BlackBox, Evaluation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Evaluates one configuration with panic containment: a black box that
/// panics is treated as a *hidden-constraint* failure (BaCO's semantics for
/// failed runs — a crashed compiler and a panicking model function are the
/// same observation), so one bad evaluation can neither deadlock the
/// completion-order collector, lose its round slot, nor tear down the whole
/// tuning run via the scope join.
///
/// `AssertUnwindSafe` is sound here: on a caught panic the black box's
/// partial state is never touched again by this crate — we only return the
/// infeasibility verdict. A black box with interior mutability must tolerate
/// its own panics, exactly as it must under any catch-and-continue driver.
fn evaluate_contained(bb: &(dyn BlackBox + Sync), cfg: &Configuration) -> Evaluation {
    catch_unwind(AssertUnwindSafe(|| bb.evaluate(cfg))).unwrap_or_else(|_| {
        Evaluation::infeasible()
    })
}

/// One completed evaluation delivered by [`evaluate_stream`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Position of the configuration in the submitted round (submission
    /// order, not completion order).
    pub index: usize,
    /// The evaluated configuration.
    pub config: Configuration,
    /// The black box's verdict.
    pub evaluation: Evaluation,
    /// Wall-clock time the black box took for this configuration.
    pub eval_time: Duration,
}

/// Evaluates `cfgs` on a pool of `threads` scoped workers (`0` = one per
/// configuration, capped at the available parallelism), invoking `on_result`
/// on the **caller's** thread for each result *as it completes* — out of
/// submission order whenever evaluations finish out of order.
///
/// The callback runs concurrently with the remaining evaluations, so the
/// caller can refit models or update incumbents while the pool drains.
/// Returns once every configuration has been evaluated and reported.
///
/// With `threads <= 1` (or a single configuration) this is a plain
/// sequential loop in submission order with zero synchronization overhead.
pub fn evaluate_stream<F>(
    bb: &(dyn BlackBox + Sync),
    cfgs: Vec<Configuration>,
    threads: usize,
    mut on_result: F,
) where
    F: FnMut(BatchOutcome),
{
    let n = cfgs.len();
    if n == 0 {
        return;
    }
    let threads = effective_threads(threads, n);
    if threads <= 1 || n == 1 {
        for (index, config) in cfgs.into_iter().enumerate() {
            let t0 = Instant::now();
            let evaluation = evaluate_contained(bb, &config);
            on_result(BatchOutcome {
                index,
                config,
                evaluation,
                eval_time: t0.elapsed(),
            });
        }
        return;
    }

    // Work-stealing by atomic cursor (identical scheme to
    // `parallel::parallel_map`); completed outcomes stream back through an
    // mpsc channel and are surfaced on the caller's thread.
    let work: Vec<Mutex<Option<Configuration>>> =
        cfgs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<BatchOutcome>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let work = &work;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let config = work[i].lock().unwrap().take().expect("config taken once");
                let t0 = Instant::now();
                let evaluation = evaluate_contained(bb, &config);
                // The receiver outlives the scope body; a send can only fail
                // if the main thread panicked, which propagates anyway.
                let _ = tx.send(BatchOutcome {
                    index: i,
                    config,
                    evaluation,
                    eval_time: t0.elapsed(),
                });
            });
        }
        drop(tx); // the iterator below ends when the last worker hangs up
        for outcome in rx {
            on_result(outcome);
        }
    });
}

/// Evaluates `cfgs` concurrently and returns the results in **submission
/// order** — [`evaluate_stream`] with the completion-order shuffle undone,
/// for callers that want parallelism without the streaming protocol.
pub fn evaluate_batch(
    bb: &(dyn BlackBox + Sync),
    cfgs: Vec<Configuration>,
    threads: usize,
) -> Vec<(Configuration, Evaluation)> {
    let n = cfgs.len();
    let mut slots: Vec<Option<(Configuration, Evaluation)>> = (0..n).map(|_| None).collect();
    evaluate_stream(bb, cfgs, threads, |out| {
        slots[out.index] = Some((out.config, out.evaluation));
    });
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};
    use crate::tuner::FnBlackBox;

    fn space() -> SearchSpace {
        SearchSpace::builder().integer("x", 0, 63).build().unwrap()
    }

    fn cfg(s: &SearchSpace, x: i64) -> Configuration {
        s.configuration(&[("x", ParamValue::Int(x))]).unwrap()
    }

    #[test]
    fn batch_preserves_submission_order() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("x").as_f64() * 2.0)
        });
        let cfgs: Vec<_> = (0..20).map(|i| cfg(&s, i)).collect();
        for threads in [1, 2, 4, 0] {
            let out = evaluate_batch(&bb, cfgs.clone(), threads);
            assert_eq!(out.len(), 20);
            for (i, (c, e)) in out.iter().enumerate() {
                assert_eq!(c.value("x").as_i64(), i as i64, "threads={threads}");
                assert_eq!(e.value(), Some(i as f64 * 2.0), "threads={threads}");
            }
        }
    }

    #[test]
    fn stream_delivers_every_outcome_exactly_once() {
        let s = space();
        // Stagger sleeps so later submissions finish first under
        // multi-threading: completion order != submission order.
        let bb = FnBlackBox::new(|c: &Configuration| {
            let x = c.value("x").as_i64();
            std::thread::sleep(Duration::from_millis((8 - (x % 8)) as u64 * 2));
            Evaluation::feasible(x as f64)
        });
        let cfgs: Vec<_> = (0..8).map(|i| cfg(&s, i)).collect();
        let mut seen = vec![0usize; 8];
        let mut order = Vec::new();
        evaluate_stream(&bb, cfgs, 4, |out| {
            assert_eq!(out.config.value("x").as_i64() as usize, out.index);
            seen[out.index] += 1;
            order.push(out.index);
        });
        assert!(seen.iter().all(|&c| c == 1), "each outcome exactly once: {seen:?}");
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn single_thread_streams_in_submission_order() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("x").as_f64())
        });
        let cfgs: Vec<_> = (0..6).map(|i| cfg(&s, i)).collect();
        let mut order = Vec::new();
        evaluate_stream(&bb, cfgs, 1, |out| order.push(out.index));
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let bb = FnBlackBox::new(|_: &Configuration| Evaluation::infeasible());
        let mut called = false;
        evaluate_stream(&bb, Vec::new(), 4, |_| called = true);
        assert!(!called);
        assert!(evaluate_batch(&bb, Vec::new(), 4).is_empty());
    }

    /// Regression for the black-box panic audit: a panicking evaluation
    /// must not deadlock the mpsc collector or lose its slot — it becomes a
    /// hidden-constraint infeasible outcome, and every other slot still
    /// completes normally, on both the threaded and the inline path.
    #[test]
    fn panicking_blackbox_becomes_infeasible_without_losing_slots() {
        let s = space();
        // Silence the default panic printout so the test log stays readable;
        // the drop guard restores it even if an assertion below fails, so a
        // failure here cannot swallow later panics' diagnostics.
        type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
        struct HookGuard(Option<PanicHook>);
        impl Drop for HookGuard {
            fn drop(&mut self) {
                if let Some(h) = self.0.take() {
                    std::panic::set_hook(h);
                }
            }
        }
        let _restore = HookGuard(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        let bb = FnBlackBox::new(|c: &Configuration| {
            let x = c.value("x").as_i64();
            if x % 3 == 0 {
                panic!("deliberate black-box crash at x={x}");
            }
            Evaluation::feasible(x as f64)
        });
        for threads in [1usize, 4] {
            let cfgs: Vec<_> = (0..12).map(|i| cfg(&s, i)).collect();
            let mut seen = vec![0usize; 12];
            evaluate_stream(&bb, cfgs.clone(), threads, |out| {
                seen[out.index] += 1;
                let x = out.config.value("x").as_i64();
                if x % 3 == 0 {
                    assert!(
                        !out.evaluation.is_feasible(),
                        "panic must surface as infeasible (threads={threads})"
                    );
                } else {
                    assert_eq!(out.evaluation.value(), Some(x as f64));
                }
            });
            assert!(
                seen.iter().all(|&c| c == 1),
                "every slot exactly once despite panics (threads={threads}): {seen:?}"
            );
            // Order-preserving entry point survives too.
            let out = evaluate_batch(&bb, cfgs, threads);
            assert_eq!(out.len(), 12);
            assert_eq!(out.iter().filter(|(_, e)| !e.is_feasible()).count(), 4);
        }
    }

    #[test]
    fn infeasible_outcomes_flow_through() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            if c.value("x").as_i64() % 2 == 0 {
                Evaluation::infeasible()
            } else {
                Evaluation::feasible(1.0)
            }
        });
        let cfgs: Vec<_> = (0..10).map(|i| cfg(&s, i)).collect();
        let out = evaluate_batch(&bb, cfgs, 3);
        let infeasible = out.iter().filter(|(_, e)| !e.is_feasible()).count();
        assert_eq!(infeasible, 5);
    }
}
