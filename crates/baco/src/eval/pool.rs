//! The scoped worker pool that evaluates one round of configurations
//! concurrently.
//!
//! Built on the same primitives as [`crate::parallel`] — `std::thread::scope`
//! plus an atomic work cursor, since `rayon` is unavailable in the offline
//! build — but with one crucial difference: results are *streamed* through a
//! channel in **completion order** instead of being collected in input order.
//! A tuning loop driving [`evaluate_stream`] therefore observes evaluations
//! exactly as a real build farm would deliver them: out of order, fastest
//! first. Order-sensitive callers use [`evaluate_batch`], which re-sorts by
//! submission index.
//!
//! With one worker (or one configuration) both entry points degenerate to
//! plain in-line evaluation in submission order — this is what keeps
//! batch-size-1 runs of the batched engine bit-identical to the sequential
//! loop.
//!
//! A **panicking** black box is contained: the panic is caught on the worker
//! (or inline) path and surfaced as a hidden-constraint infeasible outcome —
//! every submitted configuration still produces exactly one result, the
//! collector never deadlocks, and the run continues (see BaCO's failed-run
//! semantics, Sec. 4.2). The same containment philosophy covers the pool's
//! own synchronization: a poisoned work-slot mutex is recovered via
//! `into_inner` (like `server::registry` recovers tenant slots) and the
//! stranded configuration is surfaced as a hidden-constraint infeasible
//! outcome, and a collector slot a dead worker never filled is backfilled the
//! same way instead of crashing the whole run. Run journaling
//! ([`crate::journal`]) records trials in the order this pool *completes*
//! them, so a resumed journal replays the round as it actually unfolded; with
//! `threads <= 1` completion order is submission order, which extends the
//! resume-anywhere bitwise guarantee to any batch size.
//!
//! Beyond per-round streaming, [`with_pool`] keeps one worker pool alive
//! across *many* rounds and exposes it as an [`EvalPool`] — submit
//! configurations at any time, cancel ones no longer wanted, and receive
//! completions one at a time. This is the substrate of the speculative
//! evaluation pipeline ([`crate::tuner::speculate`]), which has no round
//! barrier to scope a per-round pool to.
//!
//! ```
//! use baco::eval::pool::evaluate_stream;
//! use baco::prelude::*;
//!
//! let space = SearchSpace::builder().integer("x", 0, 7).build()?;
//! let bb = FnBlackBox::new(|c: &Configuration| {
//!     Evaluation::feasible(c.value("x").as_f64() + 1.0)
//! });
//! let cfgs = vec![space.default_configuration(); 3];
//! let mut best = f64::INFINITY;
//! evaluate_stream(&bb, cfgs, 2, |outcome| {
//!     // Results arrive as they complete; fold them in immediately.
//!     if let Some(v) = outcome.evaluation.value() {
//!         best = best.min(v);
//!     }
//! });
//! assert_eq!(best, 1.0);
//! # Ok::<(), baco::Error>(())
//! ```

use crate::parallel::effective_threads;
use crate::space::Configuration;
use crate::tuner::{BlackBox, Evaluation};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Evaluates one configuration with panic containment: a black box that
/// panics is treated as a *hidden-constraint* failure (BaCO's semantics for
/// failed runs — a crashed compiler and a panicking model function are the
/// same observation), so one bad evaluation can neither deadlock the
/// completion-order collector, lose its round slot, nor tear down the whole
/// tuning run via the scope join.
///
/// `AssertUnwindSafe` is sound here: on a caught panic the black box's
/// partial state is never touched again by this crate — we only return the
/// infeasibility verdict. A black box with interior mutability must tolerate
/// its own panics, exactly as it must under any catch-and-continue driver.
fn evaluate_contained(bb: &(dyn BlackBox + Sync), cfg: &Configuration) -> Evaluation {
    catch_unwind(AssertUnwindSafe(|| bb.evaluate(cfg))).unwrap_or_else(|_| {
        Evaluation::infeasible()
    })
}

/// Takes the configuration out of a work slot, recovering a **poisoned**
/// mutex via `into_inner` — the same recovery `server::registry` applies to
/// tenant slots. Poisoning here means a sibling worker panicked while
/// holding this lock; the slot's contents are still a plain `Option` move,
/// so recovery is safe. Returns the configuration plus whether the slot was
/// poisoned; `None` if the slot was already emptied.
fn take_slot(slot: &Mutex<Option<Configuration>>) -> Option<(Configuration, bool)> {
    match slot.lock() {
        Ok(mut guard) => guard.take().map(|c| (c, false)),
        Err(poisoned) => poisoned.into_inner().take().map(|c| (c, true)),
    }
}

/// Claims one work slot and produces its evaluation. A poisoned slot is
/// mapped to the hidden-constraint infeasible outcome *without* invoking the
/// black box — the panic that poisoned it makes the shared state suspect, so
/// it is treated like any other failed run instead of crashing the pool.
/// `None` means the slot was already taken (nothing to report).
fn evaluate_slot(
    bb: &(dyn BlackBox + Sync),
    slot: &Mutex<Option<Configuration>>,
) -> Option<(Configuration, Evaluation)> {
    let (config, poisoned) = take_slot(slot)?;
    let evaluation = if poisoned {
        Evaluation::infeasible()
    } else {
        evaluate_contained(bb, &config)
    };
    Some((config, evaluation))
}

/// One completed evaluation delivered by [`evaluate_stream`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Position of the configuration in the submitted round (submission
    /// order, not completion order).
    pub index: usize,
    /// The evaluated configuration.
    pub config: Configuration,
    /// The black box's verdict.
    pub evaluation: Evaluation,
    /// Wall-clock time the black box took for this configuration.
    pub eval_time: Duration,
}

/// Evaluates `cfgs` on a pool of `threads` scoped workers (`0` = one per
/// configuration, capped at the available parallelism), invoking `on_result`
/// on the **caller's** thread for each result *as it completes* — out of
/// submission order whenever evaluations finish out of order.
///
/// The callback runs concurrently with the remaining evaluations, so the
/// caller can refit models or update incumbents while the pool drains.
/// Returns once every configuration has been evaluated and reported.
///
/// With `threads <= 1` (or a single configuration) this is a plain
/// sequential loop in submission order with zero synchronization overhead.
pub fn evaluate_stream<F>(
    bb: &(dyn BlackBox + Sync),
    cfgs: Vec<Configuration>,
    threads: usize,
    mut on_result: F,
) where
    F: FnMut(BatchOutcome),
{
    let n = cfgs.len();
    if n == 0 {
        return;
    }
    let threads = effective_threads(threads, n);
    if threads <= 1 || n == 1 {
        for (index, config) in cfgs.into_iter().enumerate() {
            let t0 = Instant::now();
            let evaluation = evaluate_contained(bb, &config);
            on_result(BatchOutcome {
                index,
                config,
                evaluation,
                eval_time: t0.elapsed(),
            });
        }
        return;
    }

    // Work-stealing by atomic cursor (identical scheme to
    // `parallel::parallel_map`); completed outcomes stream back through an
    // mpsc channel and are surfaced on the caller's thread.
    let work: Vec<Mutex<Option<Configuration>>> =
        cfgs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<BatchOutcome>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let work = &work;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t0 = Instant::now();
                let Some((config, evaluation)) = evaluate_slot(bb, &work[i]) else {
                    continue;
                };
                // The receiver outlives the scope body; a send can only fail
                // if the main thread panicked, which propagates anyway.
                let _ = tx.send(BatchOutcome {
                    index: i,
                    config,
                    evaluation,
                    eval_time: t0.elapsed(),
                });
            });
        }
        drop(tx); // the iterator below ends when the last worker hangs up
        for outcome in rx {
            on_result(outcome);
        }
    });
}

/// Evaluates `cfgs` concurrently and returns the results in **submission
/// order** — [`evaluate_stream`] with the completion-order shuffle undone,
/// for callers that want parallelism without the streaming protocol.
pub fn evaluate_batch(
    bb: &(dyn BlackBox + Sync),
    cfgs: Vec<Configuration>,
    threads: usize,
) -> Vec<(Configuration, Evaluation)> {
    let n = cfgs.len();
    let originals = cfgs.clone();
    let mut slots: Vec<Option<(Configuration, Evaluation)>> = (0..n).map(|_| None).collect();
    evaluate_stream(bb, cfgs, threads, |out| {
        slots[out.index] = Some((out.config, out.evaluation));
    });
    backfill_lost_slots(&originals, slots)
}

/// Turns the collector's slot array into submission-order results. A slot
/// its worker never filled — a worker killed mid-flight (e.g. an abort
/// inside foreign code that unwinding cannot catch) leaves a hole — is
/// backfilled with the hidden-constraint infeasible outcome for the original
/// configuration instead of crashing the whole run's collector.
fn backfill_lost_slots(
    cfgs: &[Configuration],
    slots: Vec<Option<(Configuration, Evaluation)>>,
) -> Vec<(Configuration, Evaluation)> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| (cfgs[i].clone(), Evaluation::infeasible())))
        .collect()
}

/// One completed evaluation delivered by [`EvalPool::recv`].
#[derive(Debug)]
pub struct Completion {
    /// The caller-chosen identifier passed to [`EvalPool::submit`].
    pub ticket: u64,
    /// The evaluated configuration.
    pub config: Configuration,
    /// The black box's verdict.
    pub evaluation: Evaluation,
    /// Wall-clock time the black box took for this configuration.
    pub eval_time: Duration,
}

type Job = (u64, Configuration);

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// The condvar-fed job queue shared between [`EvalPool`] and its workers.
struct SharedQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl SharedQueue {
    /// Locks the queue, recovering a poisoned mutex via `into_inner` — the
    /// queue is a plain `VecDeque` of owned jobs, always structurally valid.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shuts the pool down even if the caller's closure panics: raises the
/// shutdown flag, abandons still-queued jobs, and wakes every worker blocked
/// on the condvar so the enclosing `thread::scope` can join.
struct ShutdownGuard<'a>(&'a SharedQueue);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.shutdown = true;
        st.queue.clear();
        drop(st);
        self.0.cv.notify_all();
    }
}

fn worker_loop(bb: &(dyn BlackBox + Sync), shared: &SharedQueue, tx: mpsc::Sender<Completion>) {
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((ticket, config)) = job else { return };
        let t0 = Instant::now();
        let evaluation = evaluate_contained(bb, &config);
        let done = Completion {
            ticket,
            config,
            evaluation,
            eval_time: t0.elapsed(),
        };
        if tx.send(done).is_err() {
            // The pool was dropped mid-evaluation; nothing left to report to.
            return;
        }
    }
}

enum PoolImpl<'a> {
    /// Effective thread count ≤ 1: jobs queue up and are evaluated inline on
    /// the caller's thread, one per [`EvalPool::recv`], in strict submission
    /// order — the deterministic degenerate pool that anchors the journal's
    /// resume-bitwise guarantee.
    Inline {
        bb: &'a (dyn BlackBox + Sync),
        queue: VecDeque<Job>,
    },
    /// Long-lived scoped workers fed through a condvar queue; completions
    /// stream back through an mpsc channel in completion order.
    Threaded {
        shared: &'a SharedQueue,
        rx: mpsc::Receiver<Completion>,
        outstanding: usize,
    },
}

/// A persistent evaluation pool whose workers outlive any single round:
/// submissions and completions interleave freely, so a driver can keep
/// proposing (and withdrawing) work while earlier evaluations are still in
/// flight. Created by [`with_pool`]; this is the substrate of the
/// speculative evaluation pipeline, which replaces the per-round barrier of
/// [`evaluate_stream`] with reconciliation on completion order.
pub struct EvalPool<'a> {
    inner: PoolImpl<'a>,
}

impl std::fmt::Debug for EvalPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, outstanding) = match &self.inner {
            PoolImpl::Inline { queue, .. } => ("inline", queue.len()),
            PoolImpl::Threaded { outstanding, .. } => ("threaded", *outstanding),
        };
        f.debug_struct("EvalPool")
            .field("kind", &kind)
            .field("outstanding", &outstanding)
            .finish()
    }
}

impl EvalPool<'_> {
    /// Submits one configuration for evaluation under a caller-chosen
    /// ticket. Tickets are opaque to the pool and echoed back verbatim in
    /// the [`Completion`]; the caller is responsible for their uniqueness.
    pub fn submit(&mut self, ticket: u64, config: Configuration) {
        match &mut self.inner {
            PoolImpl::Inline { queue, .. } => queue.push_back((ticket, config)),
            PoolImpl::Threaded {
                shared,
                outstanding,
                ..
            } => {
                shared.lock().queue.push_back((ticket, config));
                shared.cv.notify_one();
                *outstanding += 1;
            }
        }
    }

    /// Withdraws a submission that has not started evaluating. Returns
    /// `true` iff the job was still queued and is now gone — its completion
    /// will never be delivered. `false` means a worker already claimed it
    /// (or the ticket is unknown): the completion **will** still arrive and
    /// the caller must be prepared to discard it.
    pub fn cancel(&mut self, ticket: u64) -> bool {
        match &mut self.inner {
            PoolImpl::Inline { queue, .. } => {
                match queue.iter().position(|(t, _)| *t == ticket) {
                    Some(pos) => {
                        queue.remove(pos);
                        true
                    }
                    None => false,
                }
            }
            PoolImpl::Threaded {
                shared,
                outstanding,
                ..
            } => {
                let mut st = shared.lock();
                match st.queue.iter().position(|(t, _)| *t == ticket) {
                    Some(pos) => {
                        st.queue.remove(pos);
                        *outstanding -= 1;
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Number of submissions whose completions have not been received yet
    /// (cancelled submissions excluded).
    pub fn outstanding(&self) -> usize {
        match &self.inner {
            PoolImpl::Inline { queue, .. } => queue.len(),
            PoolImpl::Threaded { outstanding, .. } => *outstanding,
        }
    }

    /// Blocks until the next completion, or returns `None` when nothing is
    /// outstanding. On the inline (≤ 1 thread) pool this *evaluates* the
    /// oldest queued submission on the caller's thread, so completions
    /// arrive in strict submission order.
    pub fn recv(&mut self) -> Option<Completion> {
        match &mut self.inner {
            PoolImpl::Inline { bb, queue } => {
                let (ticket, config) = queue.pop_front()?;
                let t0 = Instant::now();
                let evaluation = evaluate_contained(*bb, &config);
                Some(Completion {
                    ticket,
                    config,
                    evaluation,
                    eval_time: t0.elapsed(),
                })
            }
            PoolImpl::Threaded {
                rx, outstanding, ..
            } => {
                if *outstanding == 0 {
                    return None;
                }
                let done = rx.recv().ok()?;
                *outstanding -= 1;
                Some(done)
            }
        }
    }
}

/// Runs `f` with a persistent [`EvalPool`] of `threads` workers (`0` = one
/// per expected in-flight evaluation, capped at the available parallelism;
/// `capacity` is the expected number of simultaneously in-flight
/// evaluations, used only for that sizing).
///
/// With an effective thread count of one the pool is *inline*:
/// [`EvalPool::recv`] evaluates the oldest queued submission on the caller's
/// thread, making completion order equal submission order — the property the
/// journal's resume-bitwise guarantee builds on. Worker threads are scoped:
/// they are joined before `with_pool` returns, even if `f` panics.
///
/// ```
/// use baco::eval::pool::with_pool;
/// use baco::prelude::*;
///
/// let space = SearchSpace::builder().integer("x", 0, 7).build()?;
/// let bb = FnBlackBox::new(|c: &Configuration| {
///     Evaluation::feasible(c.value("x").as_f64() + 1.0)
/// });
/// let total = with_pool(&bb, 2, 4, |pool| {
///     for ticket in 0..3 {
///         pool.submit(ticket, space.default_configuration());
///     }
///     let mut sum = 0.0;
///     while let Some(done) = pool.recv() {
///         sum += done.evaluation.value().unwrap_or(0.0);
///     }
///     sum
/// });
/// assert_eq!(total, 3.0);
/// # Ok::<(), baco::Error>(())
/// ```
pub fn with_pool<R>(
    bb: &(dyn BlackBox + Sync),
    threads: usize,
    capacity: usize,
    f: impl FnOnce(&mut EvalPool<'_>) -> R,
) -> R {
    let threads = effective_threads(threads, capacity.max(1));
    if threads <= 1 {
        let mut pool = EvalPool {
            inner: PoolImpl::Inline {
                bb,
                queue: VecDeque::new(),
            },
        };
        return f(&mut pool);
    }
    let shared = SharedQueue {
        state: Mutex::new(QueueState::default()),
        cv: Condvar::new(),
    };
    let (tx, rx) = mpsc::channel::<Completion>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let shared = &shared;
            scope.spawn(move || worker_loop(bb, shared, tx));
        }
        drop(tx);
        let _shutdown = ShutdownGuard(&shared);
        let mut pool = EvalPool {
            inner: PoolImpl::Threaded {
                shared: &shared,
                rx,
                outstanding: 0,
            },
        };
        f(&mut pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamValue, SearchSpace};
    use crate::tuner::FnBlackBox;

    fn space() -> SearchSpace {
        SearchSpace::builder().integer("x", 0, 63).build().unwrap()
    }

    fn cfg(s: &SearchSpace, x: i64) -> Configuration {
        s.configuration(&[("x", ParamValue::Int(x))]).unwrap()
    }

    #[test]
    fn batch_preserves_submission_order() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("x").as_f64() * 2.0)
        });
        let cfgs: Vec<_> = (0..20).map(|i| cfg(&s, i)).collect();
        for threads in [1, 2, 4, 0] {
            let out = evaluate_batch(&bb, cfgs.clone(), threads);
            assert_eq!(out.len(), 20);
            for (i, (c, e)) in out.iter().enumerate() {
                assert_eq!(c.value("x").as_i64(), i as i64, "threads={threads}");
                assert_eq!(e.value(), Some(i as f64 * 2.0), "threads={threads}");
            }
        }
    }

    #[test]
    fn stream_delivers_every_outcome_exactly_once() {
        let s = space();
        // Stagger sleeps so later submissions finish first under
        // multi-threading: completion order != submission order.
        let bb = FnBlackBox::new(|c: &Configuration| {
            let x = c.value("x").as_i64();
            std::thread::sleep(Duration::from_millis((8 - (x % 8)) as u64 * 2));
            Evaluation::feasible(x as f64)
        });
        let cfgs: Vec<_> = (0..8).map(|i| cfg(&s, i)).collect();
        let mut seen = vec![0usize; 8];
        let mut order = Vec::new();
        evaluate_stream(&bb, cfgs, 4, |out| {
            assert_eq!(out.config.value("x").as_i64() as usize, out.index);
            seen[out.index] += 1;
            order.push(out.index);
        });
        assert!(seen.iter().all(|&c| c == 1), "each outcome exactly once: {seen:?}");
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn single_thread_streams_in_submission_order() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("x").as_f64())
        });
        let cfgs: Vec<_> = (0..6).map(|i| cfg(&s, i)).collect();
        let mut order = Vec::new();
        evaluate_stream(&bb, cfgs, 1, |out| order.push(out.index));
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let bb = FnBlackBox::new(|_: &Configuration| Evaluation::infeasible());
        let mut called = false;
        evaluate_stream(&bb, Vec::new(), 4, |_| called = true);
        assert!(!called);
        assert!(evaluate_batch(&bb, Vec::new(), 4).is_empty());
    }

    /// Regression for the black-box panic audit: a panicking evaluation
    /// must not deadlock the mpsc collector or lose its slot — it becomes a
    /// hidden-constraint infeasible outcome, and every other slot still
    /// completes normally, on both the threaded and the inline path.
    // Silence the default panic printout so the test log stays readable;
    // the drop guard restores it even if an assertion fails while it is
    // active, so a failure cannot swallow later panics' diagnostics.
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            if let Some(h) = self.0.take() {
                std::panic::set_hook(h);
            }
        }
    }
    fn silence_panics() -> HookGuard {
        let guard = HookGuard(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        guard
    }

    #[test]
    fn panicking_blackbox_becomes_infeasible_without_losing_slots() {
        let s = space();
        let _restore = silence_panics();
        let bb = FnBlackBox::new(|c: &Configuration| {
            let x = c.value("x").as_i64();
            if x % 3 == 0 {
                panic!("deliberate black-box crash at x={x}");
            }
            Evaluation::feasible(x as f64)
        });
        for threads in [1usize, 4] {
            let cfgs: Vec<_> = (0..12).map(|i| cfg(&s, i)).collect();
            let mut seen = vec![0usize; 12];
            evaluate_stream(&bb, cfgs.clone(), threads, |out| {
                seen[out.index] += 1;
                let x = out.config.value("x").as_i64();
                if x % 3 == 0 {
                    assert!(
                        !out.evaluation.is_feasible(),
                        "panic must surface as infeasible (threads={threads})"
                    );
                } else {
                    assert_eq!(out.evaluation.value(), Some(x as f64));
                }
            });
            assert!(
                seen.iter().all(|&c| c == 1),
                "every slot exactly once despite panics (threads={threads}): {seen:?}"
            );
            // Order-preserving entry point survives too.
            let out = evaluate_batch(&bb, cfgs, threads);
            assert_eq!(out.len(), 12);
            assert_eq!(out.iter().filter(|(_, e)| !e.is_feasible()).count(), 4);
        }
    }

    /// Regression for the poisoned-slot panic path: a work-slot mutex
    /// poisoned by a sibling worker's panic must be recovered via
    /// `into_inner` (not propagated as a pool-wide panic), and its stranded
    /// configuration mapped to the hidden-constraint infeasible outcome
    /// without ever invoking the black box.
    #[test]
    fn poisoned_work_slot_recovers_to_infeasible() {
        let s = space();
        let _restore = silence_panics();
        let slot = Mutex::new(Some(cfg(&s, 7)));
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = slot.lock().unwrap();
            panic!("poison the slot");
        }));
        assert!(slot.is_poisoned());
        // The black box would report feasible — proving the poisoned path
        // never reaches it.
        let bb = FnBlackBox::new(|_: &Configuration| Evaluation::feasible(1.0));
        let (config, evaluation) = evaluate_slot(&bb, &slot).expect("config still present");
        assert_eq!(config.value("x").as_i64(), 7);
        assert!(
            !evaluation.is_feasible(),
            "poisoned slot must surface as a hidden-constraint failure"
        );
        // The slot is consumed by the recovery; a second claim is a no-op,
        // not a crash.
        assert!(evaluate_slot(&bb, &slot).is_none());
    }

    /// Regression for the killed-worker collector crash: a worker that dies
    /// without ever filling its slot (an abort in foreign code that
    /// unwinding cannot catch) leaves a hole the collector used to `expect`
    /// on. The hole must instead surface as an infeasible outcome for the
    /// original configuration.
    #[test]
    fn killed_worker_lost_slot_becomes_infeasible() {
        let s = space();
        let cfgs: Vec<_> = (0..4).map(|i| cfg(&s, i)).collect();
        let mut slots: Vec<Option<(Configuration, Evaluation)>> = cfgs
            .iter()
            .map(|c| Some((c.clone(), Evaluation::feasible(c.value("x").as_f64()))))
            .collect();
        slots[2] = None; // the worker for slot 2 died before reporting
        let out = backfill_lost_slots(&cfgs, slots);
        assert_eq!(out.len(), 4);
        assert_eq!(out[2].0.value("x").as_i64(), 2);
        assert!(!out[2].1.is_feasible(), "lost slot must become infeasible");
        for (i, (c, e)) in out.iter().enumerate() {
            assert_eq!(c.value("x").as_i64(), i as i64);
            if i != 2 {
                assert!(e.is_feasible());
            }
        }
    }

    #[test]
    fn inline_pool_completes_in_submission_order() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("x").as_f64())
        });
        with_pool(&bb, 1, 8, |pool| {
            for (ticket, x) in [(5u64, 0i64), (3, 1), (9, 2)] {
                pool.submit(ticket, cfg(&s, x));
            }
            assert_eq!(pool.outstanding(), 3);
            let order: Vec<u64> = std::iter::from_fn(|| pool.recv())
                .map(|done| done.ticket)
                .collect();
            assert_eq!(order, vec![5, 3, 9]);
            assert_eq!(pool.outstanding(), 0);
            assert!(pool.recv().is_none());
        });
    }

    #[test]
    fn threaded_pool_delivers_every_ticket_exactly_once() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            let x = c.value("x").as_i64();
            std::thread::sleep(Duration::from_millis((8 - (x % 8)) as u64));
            Evaluation::feasible(x as f64)
        });
        with_pool(&bb, 4, 8, |pool| {
            for i in 0..8u64 {
                pool.submit(i, cfg(&s, i as i64));
            }
            let mut tickets = std::collections::HashSet::new();
            while let Some(done) = pool.recv() {
                assert_eq!(done.config.value("x").as_i64() as u64, done.ticket);
                assert_eq!(done.evaluation.value(), Some(done.ticket as f64));
                assert!(tickets.insert(done.ticket), "duplicate completion");
            }
            assert_eq!(tickets.len(), 8);
        });
    }

    #[test]
    fn inline_pool_cancel_removes_queued_job() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            Evaluation::feasible(c.value("x").as_f64())
        });
        with_pool(&bb, 1, 4, |pool| {
            pool.submit(1, cfg(&s, 1));
            pool.submit(2, cfg(&s, 2));
            assert!(pool.cancel(1), "queued job must be cancellable");
            assert!(!pool.cancel(1), "already cancelled");
            assert!(!pool.cancel(77), "unknown ticket");
            assert_eq!(pool.outstanding(), 1);
            let done = pool.recv().unwrap();
            assert_eq!(done.ticket, 2);
            assert!(pool.recv().is_none());
        });
    }

    /// The threaded cancel contract: `true` means the completion will never
    /// arrive, `false` means it will arrive exactly once — whichever way the
    /// race with the workers goes.
    #[test]
    fn threaded_pool_cancel_semantics_hold() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            std::thread::sleep(Duration::from_millis(3));
            Evaluation::feasible(c.value("x").as_f64())
        });
        with_pool(&bb, 2, 8, |pool| {
            for i in 0..8u64 {
                pool.submit(i, cfg(&s, i as i64));
            }
            let cancelled: Vec<(u64, bool)> =
                (4..8u64).map(|t| (t, pool.cancel(t))).collect();
            let mut delivered = std::collections::HashSet::new();
            while let Some(done) = pool.recv() {
                assert!(delivered.insert(done.ticket), "duplicate completion");
            }
            for t in 0..4u64 {
                assert!(delivered.contains(&t), "uncancelled ticket {t} lost");
            }
            for (t, was_cancelled) in cancelled {
                assert_ne!(
                    was_cancelled,
                    delivered.contains(&t),
                    "cancel({t}) returned {was_cancelled} but delivery disagrees"
                );
            }
        });
    }

    #[test]
    fn pool_contains_panicking_blackbox() {
        let s = space();
        let _restore = silence_panics();
        let bb = FnBlackBox::new(|c: &Configuration| {
            let x = c.value("x").as_i64();
            if x % 2 == 0 {
                panic!("deliberate crash at x={x}");
            }
            Evaluation::feasible(x as f64)
        });
        for threads in [1usize, 3] {
            with_pool(&bb, threads, 6, |pool| {
                for i in 0..6u64 {
                    pool.submit(i, cfg(&s, i as i64));
                }
                let mut infeasible = 0;
                let mut n = 0;
                while let Some(done) = pool.recv() {
                    n += 1;
                    if !done.evaluation.is_feasible() {
                        infeasible += 1;
                    }
                }
                assert_eq!(n, 6, "threads={threads}");
                assert_eq!(infeasible, 3, "threads={threads}");
            });
        }
    }

    #[test]
    fn infeasible_outcomes_flow_through() {
        let s = space();
        let bb = FnBlackBox::new(|c: &Configuration| {
            if c.value("x").as_i64() % 2 == 0 {
                Evaluation::infeasible()
            } else {
                Evaluation::feasible(1.0)
            }
        });
        let cfgs: Vec<_> = (0..10).map(|i| cfg(&s, i)).collect();
        let out = evaluate_batch(&bb, cfgs, 3);
        let infeasible = out.iter().filter(|(_, e)| !e.is_feasible()).count();
        assert_eq!(infeasible, 5);
    }
}
