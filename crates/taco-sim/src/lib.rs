//! # taco-sim — a miniature sparse tensor-algebra compiler and runtime
//!
//! The TACO substrate of the BaCO reproduction: real sparse kernels (SpMV,
//! SpMM, SDDMM, TTV, MTTKRP) executed over real sparse data, driven by a
//! tunable scheduling surface modeled on TACO's iteration-space
//! transformations [Senanayake et al., OOPSLA 2020]:
//!
//! * **loop reordering** — a permutation parameter with concordant-traversal
//!   known constraints (discordant orders take genuinely slower code paths:
//!   CSC scatter, strided traversal, re-traversal per tile);
//! * **tiling / splitting** — dense-dimension tile sizes and row-block
//!   splits with real cache behaviour;
//! * **unrolling & accumulator style** — inner-loop unroll factors and
//!   multi-accumulator reductions;
//! * **parallelization** — chunk size, scheduling policy and thread count.
//!
//! ## Parallelism model
//!
//! Kernels execute single-threaded (measuring real cache effects of the
//! chosen order/tiling), while the parallel dimension is modeled as a
//! makespan over the *measured* per-chunk work distribution: static
//! round-robin or dynamic (greedy) assignment of row-chunks to threads plus
//! per-chunk scheduling overhead. Load imbalance therefore comes from the
//! real nonzero structure (power-law matrices punish big static chunks), and
//! results are deterministic on any host — including the single-core CI
//! machines this reproduction targets. See DESIGN.md for the substitution
//! rationale.
//!
//! ## Quickstart
//!
//! ```
//! use taco_sim::benchmarks::{taco_benchmarks, TacoScale};
//! let benches = taco_benchmarks(TacoScale::Test);
//! assert_eq!(benches.len(), 15);
//! let spmm = &benches[0];
//! let eval = spmm.blackbox.evaluate(&spmm.default_config);
//! assert!(eval.value().unwrap() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
pub mod generate;
pub mod kernels;
pub mod parallel;
pub mod sparse;
