//! Sparse tensor storage: CSR/CSC matrices and sorted-COO higher-order
//! tensors (the formats TACO's default schedules traverse).

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row-major values.
    pub data: Vec<f64>,
}

impl DenseMatrix {
    /// An all-zeros matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// A deterministic pseudo-random matrix (values in `[0, 1)`).
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut data = Vec::with_capacity(nrows * ncols);
        for _ in 0..nrows * ncols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Immutable view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row pointers (`nrows + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices per nonzero, ascending within each row.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets. Duplicates are
    /// summed.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        mut triplets: Vec<(u32, u32, f64)>,
    ) -> Self {
        for &(r, c, _) in &triplets {
            assert!((r as usize) < nrows && (c as usize) < ncols, "triplet out of bounds");
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Sum duplicates.
        let mut dedup: Vec<(u32, u32, f64)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match dedup.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => dedup.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for &(r, _, _) in &dedup {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = dedup.iter().map(|&(_, c, _)| c).collect();
        let vals = dedup.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The nonzeros of row `i` as `(col_idx, vals)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[a..b], &self.vals[a..b])
    }

    /// Converts to CSC (returned as the CSR of the transpose).
    pub fn to_csc(&self) -> CsrMatrix {
        let triplets: Vec<(u32, u32, f64)> = (0..self.nrows)
            .flat_map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .map(move |(&c, &v)| (c, i as u32, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_triplets(self.ncols, self.nrows, triplets)
    }

    /// Dense reference form (tests only; quadratic memory).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                d.data[i * self.ncols + c as usize] += v;
            }
        }
        d
    }
}

/// A sorted-COO third-order tensor (coordinates ascending lexicographically),
/// the traversal order of TACO's compressed fibers.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor3 {
    /// Dimension sizes.
    pub dims: [usize; 3],
    /// Sorted coordinates.
    pub coords: Vec<[u32; 3]>,
    /// Values, aligned with `coords`.
    pub vals: Vec<f64>,
}

impl CooTensor3 {
    /// Builds a sorted tensor from coordinates; duplicates are summed.
    ///
    /// # Panics
    /// Panics on out-of-bounds coordinates.
    pub fn from_coords(dims: [usize; 3], mut entries: Vec<([u32; 3], f64)>) -> Self {
        for (c, _) in &entries {
            for d in 0..3 {
                assert!((c[d] as usize) < dims[d], "coordinate out of bounds");
            }
        }
        entries.sort_unstable_by_key(|&(c, _)| c);
        let mut coords = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        for (c, v) in entries {
            if coords.last() == Some(&c) {
                *vals.last_mut().expect("aligned") += v;
            } else {
                coords.push(c);
                vals.push(v);
            }
        }
        CooTensor3 { dims, coords, vals }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Ranges of nonzeros sharing the same leading index `i` (the compressed
    /// top-level fibers).
    pub fn slices_i(&self) -> Vec<(u32, std::ops::Range<usize>)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.coords.len() {
            let i = self.coords[start][0];
            let mut end = start;
            while end < self.coords.len() && self.coords[end][0] == i {
                end += 1;
            }
            out.push((i, start..end));
            start = end;
        }
        out
    }
}

/// A sorted-COO fourth-order tensor (for the 4th-order MTTKRP benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor4 {
    /// Dimension sizes.
    pub dims: [usize; 4],
    /// Sorted coordinates.
    pub coords: Vec<[u32; 4]>,
    /// Values, aligned with `coords`.
    pub vals: Vec<f64>,
}

impl CooTensor4 {
    /// Builds a sorted tensor from coordinates; duplicates are summed.
    ///
    /// # Panics
    /// Panics on out-of-bounds coordinates.
    pub fn from_coords(dims: [usize; 4], mut entries: Vec<([u32; 4], f64)>) -> Self {
        for (c, _) in &entries {
            for d in 0..4 {
                assert!((c[d] as usize) < dims[d], "coordinate out of bounds");
            }
        }
        entries.sort_unstable_by_key(|&(c, _)| c);
        let mut coords = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        for (c, v) in entries {
            if coords.last() == Some(&c) {
                *vals.last_mut().expect("aligned") += v;
            } else {
                coords.push(c);
                vals.push(v);
            }
        }
        CooTensor4 { dims, coords, vals }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Ranges of nonzeros sharing the same leading index.
    pub fn slices_i(&self) -> Vec<(u32, std::ops::Range<usize>)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.coords.len() {
            let i = self.coords[start][0];
            let mut end = start;
            while end < self.coords.len() && self.coords[end][0] == i {
                end += 1;
            }
            out.push((i, start..end));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_triplets_sorts_and_sums() {
        let m = CsrMatrix::from_triplets(
            3,
            3,
            vec![(2, 1, 1.0), (0, 0, 2.0), (0, 0, 3.0), (1, 2, 4.0)],
        );
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0u32][..], &[5.0][..]));
        assert_eq!(m.row(1), (&[2u32][..], &[4.0][..]));
        assert_eq!(m.row(2), (&[1u32][..], &[1.0][..]));
    }

    #[test]
    fn csc_is_transpose() {
        let m = CsrMatrix::from_triplets(2, 3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)]);
        let t = m.to_csc();
        assert_eq!(t.nrows, 3);
        assert_eq!(t.ncols, 2);
        assert_eq!(t.to_dense().get(1, 0), 1.0);
        assert_eq!(t.to_dense().get(0, 1), 2.0);
        assert_eq!(t.to_dense().get(2, 1), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn csr_rejects_out_of_bounds() {
        CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn coo3_sorted_and_sliced() {
        let t = CooTensor3::from_coords(
            [3, 2, 2],
            vec![
                ([2, 0, 0], 1.0),
                ([0, 1, 1], 2.0),
                ([0, 0, 0], 3.0),
                ([0, 1, 1], 1.5),
            ],
        );
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.coords[0], [0, 0, 0]);
        assert_eq!(t.vals[1], 3.5); // summed duplicate
        let slices = t.slices_i();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0], (0, 0..2));
        assert_eq!(slices[1], (2, 2..3));
    }

    #[test]
    fn coo4_roundtrip() {
        let t = CooTensor4::from_coords(
            [2, 2, 2, 2],
            vec![([1, 1, 1, 1], 1.0), ([0, 0, 0, 0], 2.0)],
        );
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.coords[0], [0, 0, 0, 0]);
        assert_eq!(t.slices_i().len(), 2);
    }

    #[test]
    fn dense_random_is_deterministic() {
        let a = DenseMatrix::random(4, 5, 7);
        let b = DenseMatrix::random(4, 5, 7);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| (0.0..1.0).contains(v)));
        assert_ne!(a, DenseMatrix::random(4, 5, 8));
    }
}
