//! Sparse–dense matrix multiply `A(i,j) = Σ_k B(i,k) C(k,j)` (B sparse CSR,
//! C dense) with loop order `(i, k, j)` as a permutation parameter, a dense
//! `j`-tile, and inner-loop unrolling. The three concordant orders map to
//! genuinely different traversals:
//!
//! * `(i,k,j)` — per nonzero, an AXPY over the `j` tile (streaming rows of C);
//! * `(i,j,k)` — per output element, a strided dot over the row's nonzeros
//!   (C accessed column-wise: poor locality);
//! * `(j,i,k)` — tile-outermost, re-traversing the sparse matrix per tile.

use super::{measure, pos};
use crate::parallel::{chunk_work, parallel_time, Policy, Scheme};
use crate::sparse::{CsrMatrix, DenseMatrix};

/// A decoded SpMM schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmSchedule {
    /// Order of the loop variables `(i, k, j)` (elements `0, 1, 2`).
    pub order: [u8; 3],
    /// Dense `j`-dimension tile width.
    pub j_tile: usize,
    /// Rows per parallel chunk.
    pub chunk: usize,
    /// Worker threads.
    pub threads: usize,
    /// Chunk scheduling policy.
    pub scheme: Scheme,
    /// Unroll factor of the innermost loop.
    pub unroll: usize,
}

impl SpmmSchedule {
    /// Decodes a schedule from a tuner configuration.
    pub fn from_config(cfg: &baco::Configuration) -> Self {
        SpmmSchedule {
            order: super::order3(cfg, "order"),
            j_tile: cfg.value("j_tile").as_i64() as usize,
            chunk: cfg.value("chunk").as_i64() as usize,
            threads: cfg.value("threads").as_i64() as usize,
            scheme: if cfg.value("scheme").as_str() == "dynamic" {
                Scheme::Dynamic
            } else {
                Scheme::Static
            },
            unroll: cfg.value("unroll").as_i64() as usize,
        }
    }
}

/// Executes the scheduled SpMM. Returns the dense result and the simulated
/// parallel runtime in seconds.
pub fn spmm(b: &CsrMatrix, c: &DenseMatrix, sched: &SpmmSchedule) -> (DenseMatrix, f64) {
    assert_eq!(b.ncols, c.nrows, "spmm: inner dimension mismatch");
    let mut a = DenseMatrix::zeros(b.nrows, c.ncols);
    let k_pos = pos(sched.order, 1);
    let j_pos = pos(sched.order, 2);

    let serial = if j_pos == 0 {
        // (j, i, k): tile-outermost.
        let t = measure(|| tile_outer(b, c, &mut a, sched), 3);
        std::hint::black_box(&a);
        t
    } else if k_pos < j_pos {
        // (i, k, j): AXPY form.
        let t = measure(|| axpy_form(b, c, &mut a, sched), 3);
        std::hint::black_box(&a);
        t
    } else {
        // (i, j, k): dot form.
        let t = measure(|| dot_form(b, c, &mut a, sched), 3);
        std::hint::black_box(&a);
        t
    };

    let row_work: Vec<f64> = (0..b.nrows)
        .map(|i| (b.row_ptr[i + 1] - b.row_ptr[i]) as f64 * c.ncols as f64 + 1.0)
        .collect();
    let chunks = chunk_work(&row_work, sched.chunk);
    let time = parallel_time(
        serial,
        &chunks,
        Policy {
            threads: sched.threads,
            scheme: sched.scheme,
        },
    );
    (a, time)
}

fn axpy_form(b: &CsrMatrix, c: &DenseMatrix, a: &mut DenseMatrix, sched: &SpmmSchedule) {
    let n = c.ncols;
    let tile = sched.j_tile.max(1).min(n);
    let u = sched.unroll.max(1);
    a.data.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..b.nrows {
        let (cols, vals) = b.row(i);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + tile).min(n);
            let arow = &mut a.data[i * n..(i + 1) * n];
            for (&k, &v) in cols.iter().zip(vals) {
                let crow = &c.data[k as usize * n..(k as usize + 1) * n];
                let main = j0 + (j1 - j0) / u * u;
                let mut j = j0;
                while j < main {
                    for q in 0..u {
                        arow[j + q] += v * crow[j + q];
                    }
                    j += u;
                }
                for j in main..j1 {
                    arow[j] += v * crow[j];
                }
            }
            j0 = j1;
        }
    }
}

fn dot_form(b: &CsrMatrix, c: &DenseMatrix, a: &mut DenseMatrix, sched: &SpmmSchedule) {
    let n = c.ncols;
    let tile = sched.j_tile.max(1).min(n);
    for i in 0..b.nrows {
        let (cols, vals) = b.row(i);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + tile).min(n);
            for j in j0..j1 {
                let mut acc = 0.0;
                for (&k, &v) in cols.iter().zip(vals) {
                    acc += v * c.data[k as usize * n + j];
                }
                a.data[i * n + j] = acc;
            }
            j0 = j1;
        }
    }
}

fn tile_outer(b: &CsrMatrix, c: &DenseMatrix, a: &mut DenseMatrix, sched: &SpmmSchedule) {
    let n = c.ncols;
    let tile = sched.j_tile.max(1).min(n);
    a.data.iter_mut().for_each(|v| *v = 0.0);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        for i in 0..b.nrows {
            let (cols, vals) = b.row(i);
            let arow = &mut a.data[i * n..(i + 1) * n];
            for (&k, &v) in cols.iter().zip(vals) {
                let crow = &c.data[k as usize * n..(k as usize + 1) * n];
                for j in j0..j1 {
                    arow[j] += v * crow[j];
                }
            }
        }
        j0 = j1;
    }
}

/// Reference implementation for correctness tests.
pub fn reference(b: &CsrMatrix, c: &DenseMatrix) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(b.nrows, c.ncols);
    for i in 0..b.nrows {
        let (cols, vals) = b.row(i);
        for (&k, &v) in cols.iter().zip(vals) {
            for j in 0..c.ncols {
                a.data[i * c.ncols + j] += v * c.get(k as usize, j);
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{matrix, spec};

    #[test]
    fn all_orders_agree_with_reference() {
        let b = matrix(&spec("email-Enron"), 0.002);
        let c = DenseMatrix::random(b.ncols, 32, 5);
        let want = reference(&b, &c);
        for order in [[0u8, 1, 2], [0, 2, 1], [2, 0, 1]] {
            let s = SpmmSchedule {
                order,
                j_tile: 16,
                chunk: 64,
                threads: 2,
                scheme: Scheme::Dynamic,
                unroll: 4,
            };
            let (a, t) = spmm(&b, &c, &s);
            assert!(t > 0.0);
            for (x, y) in a.data.iter().zip(&want.data) {
                assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn tile_bigger_than_n_is_clamped() {
        let b = matrix(&spec("ACTIVSg10K"), 0.002);
        let c = DenseMatrix::random(b.ncols, 8, 1);
        let s = SpmmSchedule {
            order: [0, 1, 2],
            j_tile: 4096,
            chunk: 64,
            threads: 1,
            scheme: Scheme::Static,
            unroll: 8,
        };
        let (a, _) = spmm(&b, &c, &s);
        let want = reference(&b, &c);
        for (x, y) in a.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }
}
