//! Sparse matrix–vector multiply `a(i) = Σ_k B(i,k) c(k)` with a TACO-style
//! schedule: the row loop is split into blocks (`i0`/`i1`), the three loop
//! variables `(i0, i1, k)` can be reordered, and the inner reduction can be
//! unrolled and widened. Discordant orders (where `k` leaves the innermost
//! position) take genuinely different code paths with different measured
//! cost: a strided two-pass reduction, or a full CSC scatter traversal.

use super::{measure, pos};
use crate::parallel::{chunk_work, parallel_time, Policy, Scheme};
use crate::sparse::CsrMatrix;

/// A decoded SpMV schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvSchedule {
    /// Order of the loop variables `(i0, i1, k)` (elements `0, 1, 2`).
    pub order: [u8; 3],
    /// Rows per `i0` block.
    pub block: usize,
    /// Rows per parallel chunk.
    pub chunk: usize,
    /// Worker threads.
    pub threads: usize,
    /// Chunk scheduling policy.
    pub scheme: Scheme,
    /// Inner-loop unroll factor (1/2/4/8).
    pub unroll: usize,
    /// Use four independent accumulators.
    pub wide_acc: bool,
}

impl SpmvSchedule {
    /// Decodes a schedule from a tuner configuration (see
    /// [`crate::benchmarks`] for the parameter names).
    pub fn from_config(cfg: &baco::Configuration) -> Self {
        SpmvSchedule {
            order: super::order3(cfg, "order"),
            block: cfg.value("block").as_i64() as usize,
            chunk: cfg.value("chunk").as_i64() as usize,
            threads: cfg.value("threads").as_i64() as usize,
            scheme: if cfg.value("scheme").as_str() == "dynamic" {
                Scheme::Dynamic
            } else {
                Scheme::Static
            },
            unroll: cfg.value("unroll").as_i64() as usize,
            wide_acc: cfg.value("acc").as_str() == "wide",
        }
    }
}

/// Executes the scheduled SpMV. Returns the result vector and the simulated
/// parallel runtime in seconds.
///
/// `csc` must be `a.to_csc()`, precomputed once per matrix (the discordant
/// `k`-outermost order traverses it).
pub fn spmv(a: &CsrMatrix, csc: &CsrMatrix, x: &[f64], sched: &SpmvSchedule) -> (Vec<f64>, f64) {
    let mut y = vec![0.0; a.nrows];
    let k_pos = pos(sched.order, 2);

    let serial = match k_pos {
        2 => {
            // Concordant: blocked row-major traversal.
            let t = measure(|| row_major(a, x, &mut y, sched), 3);
            std::hint::black_box(&y);
            t
        }
        1 => {
            // k in the middle: two-pass strided reduction per row.
            let t = measure(|| strided(a, x, &mut y), 3);
            std::hint::black_box(&y);
            t
        }
        _ => {
            // k outermost: CSC scatter.
            let t = measure(|| scatter(csc, x, &mut y), 3);
            std::hint::black_box(&y);
            t
        }
    };

    // Parallel work distribution: rows for concordant orders, columns for
    // the scatter order.
    let row_work: Vec<f64> = if k_pos == 0 {
        (0..csc.nrows)
            .map(|i| (csc.row_ptr[i + 1] - csc.row_ptr[i]) as f64 + 0.5)
            .collect()
    } else {
        (0..a.nrows)
            .map(|i| (a.row_ptr[i + 1] - a.row_ptr[i]) as f64 + 0.5)
            .collect()
    };
    let chunks = chunk_work(&row_work, sched.chunk);
    let time = parallel_time(
        serial,
        &chunks,
        Policy {
            threads: sched.threads,
            scheme: sched.scheme,
        },
    );
    (y, time)
}

#[allow(clippy::needless_range_loop)] // loops mirror the modeled traversal order
fn row_major(a: &CsrMatrix, x: &[f64], y: &mut [f64], sched: &SpmvSchedule) {
    let block = sched.block.max(1);
    let nblocks = a.nrows.div_ceil(block);
    for b in 0..nblocks {
        let lo = b * block;
        let hi = ((b + 1) * block).min(a.nrows);
        for i in lo..hi {
            let (cols, vals) = a.row(i);
            y[i] = if sched.wide_acc {
                dot_wide(cols, vals, x)
            } else {
                dot_unrolled(cols, vals, x, sched.unroll)
            };
        }
    }
}

fn dot_unrolled(cols: &[u32], vals: &[f64], x: &[f64], unroll: usize) -> f64 {
    let mut acc = 0.0;
    let u = unroll.max(1);
    let main = cols.len() / u * u;
    let mut p = 0;
    while p < main {
        for q in 0..u {
            acc += vals[p + q] * x[cols[p + q] as usize];
        }
        p += u;
    }
    for q in main..cols.len() {
        acc += vals[q] * x[cols[q] as usize];
    }
    acc
}

fn dot_wide(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let main = cols.len() / 4 * 4;
    let mut p = 0;
    while p < main {
        acc[0] += vals[p] * x[cols[p] as usize];
        acc[1] += vals[p + 1] * x[cols[p + 1] as usize];
        acc[2] += vals[p + 2] * x[cols[p + 2] as usize];
        acc[3] += vals[p + 3] * x[cols[p + 3] as usize];
        p += 4;
    }
    let mut tail = 0.0;
    for q in main..cols.len() {
        tail += vals[q] * x[cols[q] as usize];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Two-pass (even indices, then odd) reduction — the executable semantics we
/// give the "k between i0 and i1" discordant order. Touches each row twice
/// with stride-2 access.
#[allow(clippy::needless_range_loop)] // loops mirror the modeled traversal order
fn strided(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    for i in 0..a.nrows {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        let mut p = 0;
        while p < cols.len() {
            acc += vals[p] * x[cols[p] as usize];
            p += 2;
        }
        let mut p = 1;
        while p < cols.len() {
            acc += vals[p] * x[cols[p] as usize];
            p += 2;
        }
        y[i] = acc;
    }
}

/// Column-outermost traversal over the CSC form, scattering into `y` — the
/// executable semantics of the fully discordant order.
#[allow(clippy::needless_range_loop)] // loops mirror the modeled traversal order
fn scatter(csc: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    y.iter_mut().for_each(|v| *v = 0.0);
    for j in 0..csc.nrows {
        let (rows, vals) = csc.row(j);
        let xj = x[j];
        for (&r, &v) in rows.iter().zip(vals) {
            y[r as usize] += v * xj;
        }
    }
}

/// Reference implementation (unscheduled), for correctness tests.
#[allow(clippy::needless_range_loop)] // loops mirror the modeled traversal order
pub fn reference(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows];
    for i in 0..a.nrows {
        let (cols, vals) = a.row(i);
        y[i] = cols.iter().zip(vals).map(|(&c, &v)| v * x[c as usize]).sum();
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{matrix, spec};

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    fn sched(order: [u8; 3], unroll: usize, wide: bool) -> SpmvSchedule {
        SpmvSchedule {
            order,
            block: 64,
            chunk: 32,
            threads: 2,
            scheme: Scheme::Static,
            unroll,
            wide_acc: wide,
        }
    }

    #[test]
    fn all_orders_compute_the_same_result() {
        let a = matrix(&spec("email-Enron"), 0.005);
        let csc = a.to_csc();
        let x: Vec<f64> = (0..a.ncols).map(|i| (i % 7) as f64 * 0.3 + 0.1).collect();
        let want = reference(&a, &x);
        for order in [[0u8, 1, 2], [0, 2, 1], [2, 0, 1]] {
            for unroll in [1, 4] {
                for wide in [false, true] {
                    let (y, t) = spmv(&a, &csc, &x, &sched(order, unroll, wide));
                    close(&y, &want);
                    assert!(t > 0.0 && t.is_finite());
                }
            }
        }
    }

    #[test]
    fn simulated_time_rewards_parallelism_on_balanced_input() {
        let a = matrix(&spec("cage12"), 0.01); // banded → balanced rows
        let csc = a.to_csc();
        let x = vec![1.0; a.ncols];
        let mut s1 = sched([0, 1, 2], 4, false);
        s1.threads = 1;
        let mut s4 = s1.clone();
        s4.threads = 4;
        // Average over repeats to damp timer noise.
        let t1: f64 = (0..3).map(|_| spmv(&a, &csc, &x, &s1).1).sum::<f64>() / 3.0;
        let t4: f64 = (0..3).map(|_| spmv(&a, &csc, &x, &s4).1).sum::<f64>() / 3.0;
        assert!(t4 < t1, "t4 {t4} vs t1 {t1}");
    }

    #[test]
    fn schedule_from_config_roundtrip() {
        let space = crate::benchmarks::spmv_space();
        let cfg = space.default_configuration();
        let s = SpmvSchedule::from_config(&cfg);
        assert_eq!(s.order, [0, 1, 2]);
        assert!(s.threads >= 1);
    }
}
