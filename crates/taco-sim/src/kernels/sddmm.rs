//! Sampled dense–dense matrix multiply `A(i,j) = B(i,j) · Σ_k C(i,k) D(j,k)`
//! (B sparse, C/D dense, both row-major over `k`). The loop order `(i, j, k)`
//! is a permutation parameter; `k` can be tiled and unrolled. Orders map to:
//!
//! * `(i,j,k)` — per nonzero, a contiguous dot of `C[i,:]` and `D[j,:]`;
//! * `(i,k,j)` — `k`-tiles outer within each row, partial dots accumulated
//!   into a row-sized buffer (extra traffic, better `C` reuse);
//! * `(k,i,j)` — `k`-tiles outermost, every nonzero re-visited per tile.

use super::{measure, pos};
use crate::parallel::{chunk_work, parallel_time, Policy, Scheme};
use crate::sparse::{CsrMatrix, DenseMatrix};

/// A decoded SDDMM schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SddmmSchedule {
    /// Order of the loop variables `(i, j, k)` (elements `0, 1, 2`).
    pub order: [u8; 3],
    /// `k`-dimension tile width.
    pub k_tile: usize,
    /// Rows per parallel chunk.
    pub chunk: usize,
    /// Worker threads.
    pub threads: usize,
    /// Chunk scheduling policy.
    pub scheme: Scheme,
    /// Unroll factor of the dot loop.
    pub unroll: usize,
}

impl SddmmSchedule {
    /// Decodes a schedule from a tuner configuration.
    pub fn from_config(cfg: &baco::Configuration) -> Self {
        SddmmSchedule {
            order: super::order3(cfg, "order"),
            k_tile: cfg.value("k_tile").as_i64() as usize,
            chunk: cfg.value("chunk").as_i64() as usize,
            threads: cfg.value("threads").as_i64() as usize,
            scheme: if cfg.value("scheme").as_str() == "dynamic" {
                Scheme::Dynamic
            } else {
                Scheme::Static
            },
            unroll: cfg.value("unroll").as_i64() as usize,
        }
    }
}

/// Executes the scheduled SDDMM. Returns the output nonzero values (aligned
/// with `b`'s nonzeros) and the simulated parallel runtime in seconds.
///
/// # Panics
/// Panics if `c`/`d` have mismatched `k` dimensions or rows.
pub fn sddmm(
    b: &CsrMatrix,
    c: &DenseMatrix,
    d: &DenseMatrix,
    sched: &SddmmSchedule,
) -> (Vec<f64>, f64) {
    assert_eq!(c.ncols, d.ncols, "sddmm: k dimension mismatch");
    assert_eq!(c.nrows, b.nrows, "sddmm: C rows must match B rows");
    assert_eq!(d.nrows, b.ncols, "sddmm: D rows must match B cols");
    let mut out = vec![0.0; b.nnz()];
    let k_pos = pos(sched.order, 2);

    let serial = if k_pos == 2 {
        let t = measure(|| dot_form(b, c, d, &mut out, sched), 3);
        std::hint::black_box(&out);
        t
    } else if k_pos == 1 {
        let t = measure(|| ktile_inner(b, c, d, &mut out, sched), 3);
        std::hint::black_box(&out);
        t
    } else {
        let t = measure(|| ktile_outer(b, c, d, &mut out, sched), 3);
        std::hint::black_box(&out);
        t
    };

    let kdim = c.ncols as f64;
    let row_work: Vec<f64> = (0..b.nrows)
        .map(|i| (b.row_ptr[i + 1] - b.row_ptr[i]) as f64 * kdim + 1.0)
        .collect();
    let chunks = chunk_work(&row_work, sched.chunk);
    let time = parallel_time(
        serial,
        &chunks,
        Policy {
            threads: sched.threads,
            scheme: sched.scheme,
        },
    );
    (out, time)
}

fn dot_form(b: &CsrMatrix, c: &DenseMatrix, d: &DenseMatrix, out: &mut [f64], s: &SddmmSchedule) {
    let kdim = c.ncols;
    let u = s.unroll.max(1);
    for i in 0..b.nrows {
        let (cols, vals) = b.row(i);
        let crow = c.row(i);
        let base = b.row_ptr[i];
        for (p, (&j, &bv)) in cols.iter().zip(vals).enumerate() {
            let drow = d.row(j as usize);
            let main = kdim / u * u;
            let mut acc = 0.0;
            let mut k = 0;
            while k < main {
                for q in 0..u {
                    acc += crow[k + q] * drow[k + q];
                }
                k += u;
            }
            for k in main..kdim {
                acc += crow[k] * drow[k];
            }
            out[base + p] = bv * acc;
        }
    }
}

fn ktile_inner(
    b: &CsrMatrix,
    c: &DenseMatrix,
    d: &DenseMatrix,
    out: &mut [f64],
    s: &SddmmSchedule,
) {
    let kdim = c.ncols;
    let tile = s.k_tile.max(1).min(kdim);
    out.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..b.nrows {
        let (cols, _) = b.row(i);
        let crow = c.row(i);
        let base = b.row_ptr[i];
        let mut k0 = 0;
        while k0 < kdim {
            let k1 = (k0 + tile).min(kdim);
            for (p, &j) in cols.iter().enumerate() {
                let drow = d.row(j as usize);
                let mut acc = 0.0;
                for k in k0..k1 {
                    acc += crow[k] * drow[k];
                }
                out[base + p] += acc;
            }
            k0 = k1;
        }
        // Scale by the sampled value at the end.
        let (_, vals) = b.row(i);
        for (p, &bv) in vals.iter().enumerate() {
            out[base + p] *= bv;
        }
    }
}

fn ktile_outer(
    b: &CsrMatrix,
    c: &DenseMatrix,
    d: &DenseMatrix,
    out: &mut [f64],
    s: &SddmmSchedule,
) {
    let kdim = c.ncols;
    let tile = s.k_tile.max(1).min(kdim);
    out.iter_mut().for_each(|v| *v = 0.0);
    let mut k0 = 0;
    while k0 < kdim {
        let k1 = (k0 + tile).min(kdim);
        for i in 0..b.nrows {
            let (cols, _) = b.row(i);
            let crow = c.row(i);
            let base = b.row_ptr[i];
            for (p, &j) in cols.iter().enumerate() {
                let drow = d.row(j as usize);
                let mut acc = 0.0;
                for k in k0..k1 {
                    acc += crow[k] * drow[k];
                }
                out[base + p] += acc;
            }
        }
        k0 = k1;
    }
    for i in 0..b.nrows {
        let (_, vals) = b.row(i);
        let base = b.row_ptr[i];
        for (p, &bv) in vals.iter().enumerate() {
            out[base + p] *= bv;
        }
    }
}

/// Reference implementation for correctness tests.
pub fn reference(b: &CsrMatrix, c: &DenseMatrix, d: &DenseMatrix) -> Vec<f64> {
    let mut out = vec![0.0; b.nnz()];
    for i in 0..b.nrows {
        let (cols, vals) = b.row(i);
        let base = b.row_ptr[i];
        for (p, (&j, &bv)) in cols.iter().zip(vals).enumerate() {
            let dot: f64 = (0..c.ncols).map(|k| c.get(i, k) * d.get(j as usize, k)).sum();
            out[base + p] = bv * dot;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{matrix, spec};

    #[test]
    fn all_orders_agree_with_reference() {
        let b = matrix(&spec("ACTIVSg10K"), 0.003);
        let kdim = 24;
        let c = DenseMatrix::random(b.nrows, kdim, 3);
        let d = DenseMatrix::random(b.ncols, kdim, 4);
        let want = reference(&b, &c, &d);
        for order in [[0u8, 1, 2], [0, 2, 1], [2, 0, 1]] {
            let s = SddmmSchedule {
                order,
                k_tile: 8,
                chunk: 32,
                threads: 2,
                scheme: Scheme::Static,
                unroll: 2,
            };
            let (out, t) = sddmm(&b, &c, &d, &s);
            assert!(t > 0.0);
            for (x, y) in out.iter().zip(&want) {
                assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }
}
