//! Tensor-times-vector `A(i,j) = Σ_k B(i,j,k) c(k)` over a sorted-COO
//! 3-tensor. The schedule chooses the loop order over `(i, j, k)`, a
//! direct-accumulation or dense-workspace strategy, and the parallel policy.
//! The dense workspace allocates `threads × dim_j` doubles — schedules that
//! blow past the memory budget fail like a real out-of-memory run would,
//! which is this benchmark's *hidden* constraint.

use super::{measure, pos};
use crate::parallel::{chunk_work, parallel_time, Policy, Scheme};
use crate::sparse::{CooTensor3, DenseMatrix};

/// Memory budget for per-thread dense workspaces (bytes). Schedules whose
/// workspace exceeds this are infeasible (hidden constraint).
pub const WORKSPACE_LIMIT_BYTES: usize = 24 * 1024 * 1024;

/// A decoded TTV schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TtvSchedule {
    /// Order of the loop variables `(i, j, k)` (elements `0, 1, 2`).
    pub order: [u8; 3],
    /// Use a dense per-thread `j` workspace instead of direct accumulation.
    pub dense_workspace: bool,
    /// Top-level slices per parallel chunk.
    pub chunk: usize,
    /// Worker threads.
    pub threads: usize,
    /// Chunk scheduling policy.
    pub scheme: Scheme,
    /// Unroll factor of the nonzero loop.
    pub unroll: usize,
    /// Slice block size for the `i` loop.
    pub block: usize,
}

impl TtvSchedule {
    /// Decodes a schedule from a tuner configuration.
    pub fn from_config(cfg: &baco::Configuration) -> Self {
        TtvSchedule {
            order: super::order3(cfg, "order"),
            dense_workspace: cfg.value("workspace").as_str() == "dense",
            chunk: cfg.value("chunk").as_i64() as usize,
            threads: cfg.value("threads").as_i64() as usize,
            scheme: if cfg.value("scheme").as_str() == "dynamic" {
                Scheme::Dynamic
            } else {
                Scheme::Static
            },
            unroll: cfg.value("unroll").as_i64() as usize,
            block: cfg.value("block").as_i64() as usize,
        }
    }

    /// Bytes of dense workspace this schedule would allocate for a tensor
    /// with `dim_j` columns.
    pub fn workspace_bytes(&self, dim_j: usize) -> usize {
        if self.dense_workspace {
            self.threads * dim_j * std::mem::size_of::<f64>()
        } else {
            0
        }
    }

    /// The *hidden* constraint: the runtime refuses per-thread dense
    /// workspaces beyond 8 threads (replicated-buffer memory blow-up) or
    /// beyond the absolute byte budget. Not declared to the tuner — it
    /// surfaces only as failed evaluations, exactly like a GPU OOM in the
    /// paper's RISE benchmarks.
    pub fn violates_hidden(&self, dim_j: usize) -> bool {
        self.dense_workspace
            && (self.threads > 8 || self.workspace_bytes(dim_j) > WORKSPACE_LIMIT_BYTES)
    }
}

/// Executes the scheduled TTV. Returns the dense `(i, j)` result and the
/// simulated runtime, or `None` when the schedule violates the workspace
/// memory budget (hidden constraint).
pub fn ttv(b: &CooTensor3, c: &[f64], sched: &TtvSchedule) -> Option<(DenseMatrix, f64)> {
    assert_eq!(b.dims[2], c.len(), "ttv: vector length mismatch");
    if sched.violates_hidden(b.dims[1]) {
        return None;
    }
    let mut a = DenseMatrix::zeros(b.dims[0], b.dims[1]);
    let slices = b.slices_i();
    let k_pos = pos(sched.order, 2);

    let serial = if sched.dense_workspace {
        let mut ws = vec![0.0; b.dims[1]];
        let t = measure(|| workspace_form(b, c, &mut a, &slices, &mut ws), 3);
        std::hint::black_box(&a);
        t
    } else if k_pos == 2 {
        let t = measure(|| direct_form(b, c, &mut a, sched.unroll), 3);
        std::hint::black_box(&a);
        t
    } else {
        // Discordant: process nonzeros in two strided passes.
        let t = measure(|| strided_form(b, c, &mut a), 3);
        std::hint::black_box(&a);
        t
    };

    let slice_work: Vec<f64> = slices.iter().map(|(_, r)| r.len() as f64 + 0.5).collect();
    let chunks = chunk_work(&slice_work, sched.chunk);
    let time = parallel_time(
        serial,
        &chunks,
        Policy {
            threads: sched.threads,
            scheme: sched.scheme,
        },
    );
    Some((a, time))
}

fn direct_form(b: &CooTensor3, c: &[f64], a: &mut DenseMatrix, unroll: usize) {
    a.data.iter_mut().for_each(|v| *v = 0.0);
    let n = b.nnz();
    let u = unroll.max(1);
    let main = n / u * u;
    let ncols = a.ncols;
    let mut p = 0;
    while p < main {
        for q in 0..u {
            let [i, j, k] = b.coords[p + q];
            a.data[i as usize * ncols + j as usize] += b.vals[p + q] * c[k as usize];
        }
        p += u;
    }
    for p in main..n {
        let [i, j, k] = b.coords[p];
        a.data[i as usize * ncols + j as usize] += b.vals[p] * c[k as usize];
    }
}

fn strided_form(b: &CooTensor3, c: &[f64], a: &mut DenseMatrix) {
    a.data.iter_mut().for_each(|v| *v = 0.0);
    let ncols = a.ncols;
    for start in [0usize, 1] {
        let mut p = start;
        while p < b.nnz() {
            let [i, j, k] = b.coords[p];
            a.data[i as usize * ncols + j as usize] += b.vals[p] * c[k as usize];
            p += 2;
        }
    }
}

fn workspace_form(
    b: &CooTensor3,
    c: &[f64],
    a: &mut DenseMatrix,
    slices: &[(u32, std::ops::Range<usize>)],
    ws: &mut [f64],
) {
    a.data.iter_mut().for_each(|v| *v = 0.0);
    let ncols = a.ncols;
    for (i, range) in slices {
        ws.iter_mut().for_each(|v| *v = 0.0);
        for p in range.clone() {
            let [_, j, k] = b.coords[p];
            ws[j as usize] += b.vals[p] * c[k as usize];
        }
        let arow = &mut a.data[*i as usize * ncols..(*i as usize + 1) * ncols];
        for (dst, src) in arow.iter_mut().zip(ws.iter()) {
            *dst += *src;
        }
    }
}

/// Reference implementation for correctness tests.
pub fn reference(b: &CooTensor3, c: &[f64]) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(b.dims[0], b.dims[1]);
    for (p, [i, j, k]) in b.coords.iter().copied().enumerate() {
        a.data[i as usize * b.dims[1] + j as usize] += b.vals[p] * c[k as usize];
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{spec, tensor3};

    fn sched(order: [u8; 3], ws: bool) -> TtvSchedule {
        TtvSchedule {
            order,
            dense_workspace: ws,
            chunk: 16,
            threads: 2,
            scheme: Scheme::Dynamic,
            unroll: 4,
            block: 64,
        }
    }

    #[test]
    fn variants_agree_with_reference() {
        let b = tensor3(&spec("uber3"), 0.01);
        let c: Vec<f64> = (0..b.dims[2]).map(|k| 0.1 + (k % 5) as f64).collect();
        let want = reference(&b, &c);
        for (order, ws) in [([0u8, 1, 2], false), ([0, 2, 1], false), ([0, 1, 2], true)] {
            let (a, t) = ttv(&b, &c, &sched(order, ws)).unwrap();
            assert!(t > 0.0);
            for (x, y) in a.data.iter().zip(&want.data) {
                assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn oversized_workspace_is_hidden_infeasible() {
        let b = tensor3(&spec("uber3"), 0.01);
        let c = vec![1.0; b.dims[2]];
        let mut s = sched([0, 1, 2], true);
        s.threads = 8;
        // Force an enormous nominal workspace by inflating the j dimension
        // through a fake tensor.
        let mut big = b.clone();
        big.dims[1] = WORKSPACE_LIMIT_BYTES; // bytes/8 × 8 threads ≫ limit
        assert!(ttv(&big, &c, &s).is_none());
        assert!(ttv(&b, &c, &s).is_some());
    }

    #[test]
    fn workspace_bytes_accounting() {
        let s = sched([0, 1, 2], true);
        assert_eq!(s.workspace_bytes(1000), 2 * 1000 * 8);
        let d = sched([0, 1, 2], false);
        assert_eq!(d.workspace_bytes(1000), 0);
    }
}
