//! Fourth-order matricized-tensor-times-Khatri-Rao-product
//! `A(i,j) = Σ_{k,l,m} B(i,k,l,m) C(k,j) D(l,j) E(m,j)` over a sorted-COO
//! 4-tensor. The permutation parameter orders the reduction variables
//! `(k, l, m)`, which controls which pair of factor rows gets its product
//! cached across consecutive nonzeros — with lexicographically sorted
//! coordinates, leading with `k` gives long reuse runs, leading with `m`
//! none, a genuinely measurable difference.

use super::measure;
use crate::parallel::{chunk_work, parallel_time, Policy, Scheme};
use crate::sparse::{CooTensor4, DenseMatrix};

/// A decoded MTTKRP schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MttkrpSchedule {
    /// Order of the reduction variables `(k, l, m)` (elements `0, 1, 2`).
    pub order: [u8; 3],
    /// Dense `j`-dimension tile width.
    pub j_tile: usize,
    /// Top-level slices per parallel chunk.
    pub chunk: usize,
    /// Worker threads.
    pub threads: usize,
    /// Chunk scheduling policy.
    pub scheme: Scheme,
    /// Unroll factor of the `j` loop.
    pub unroll: usize,
}

impl MttkrpSchedule {
    /// Decodes a schedule from a tuner configuration.
    pub fn from_config(cfg: &baco::Configuration) -> Self {
        MttkrpSchedule {
            order: super::order3(cfg, "order"),
            j_tile: cfg.value("j_tile").as_i64() as usize,
            chunk: cfg.value("chunk").as_i64() as usize,
            threads: cfg.value("threads").as_i64() as usize,
            scheme: if cfg.value("scheme").as_str() == "dynamic" {
                Scheme::Dynamic
            } else {
                Scheme::Static
            },
            unroll: cfg.value("unroll").as_i64() as usize,
        }
    }
}

/// Executes the scheduled 4th-order MTTKRP. Factor matrices `c`, `d`, `e`
/// have `b.dims[1..4]` rows respectively and a common column count `j`.
/// Returns the dense `(i, j)` result and the simulated runtime in seconds.
///
/// # Panics
/// Panics on factor dimension mismatches.
pub fn mttkrp(
    b: &CooTensor4,
    c: &DenseMatrix,
    d: &DenseMatrix,
    e: &DenseMatrix,
    sched: &MttkrpSchedule,
) -> (DenseMatrix, f64) {
    assert_eq!(c.nrows, b.dims[1], "mttkrp: C rows");
    assert_eq!(d.nrows, b.dims[2], "mttkrp: D rows");
    assert_eq!(e.nrows, b.dims[3], "mttkrp: E rows");
    assert!(c.ncols == d.ncols && d.ncols == e.ncols, "mttkrp: rank mismatch");
    let rank = c.ncols;
    let mut a = DenseMatrix::zeros(b.dims[0], rank);

    let serial = {
        let t = measure(|| cached_form(b, c, d, e, &mut a, sched), 3);
        std::hint::black_box(&a);
        t
    };

    let slices = b.slices_i();
    let slice_work: Vec<f64> =
        slices.iter().map(|(_, r)| r.len() as f64 * rank as f64 + 1.0).collect();
    let chunks = chunk_work(&slice_work, sched.chunk);
    let time = parallel_time(
        serial,
        &chunks,
        Policy {
            threads: sched.threads,
            scheme: sched.scheme,
        },
    );
    (a, time)
}

fn cached_form(
    b: &CooTensor4,
    c: &DenseMatrix,
    d: &DenseMatrix,
    e: &DenseMatrix,
    a: &mut DenseMatrix,
    sched: &MttkrpSchedule,
) {
    let rank = c.ncols;
    let tile = sched.j_tile.max(1).min(rank);
    let u = sched.unroll.max(1);
    a.data.iter_mut().for_each(|v| *v = 0.0);
    // Factor lookup in the scheduled reduction order: coordinate slots are
    // k=1, l=2, m=3 of each nonzero.
    let factors: [&DenseMatrix; 3] = [c, d, e];
    let f1 = sched.order[0] as usize;
    let f2 = sched.order[1] as usize;
    let f3 = sched.order[2] as usize;

    let mut pair = vec![0.0f64; tile];
    let mut j0 = 0;
    while j0 < rank {
        let j1 = (j0 + tile).min(rank);
        let width = j1 - j0;
        let mut cached: Option<(u32, u32)> = None;
        for (p, coord) in b.coords.iter().enumerate() {
            let i = coord[0] as usize;
            let i1 = coord[1 + f1];
            let i2 = coord[1 + f2];
            let i3 = coord[1 + f3] as usize;
            if cached != Some((i1, i2)) {
                let r1 = &factors[f1].row(i1 as usize)[j0..j1];
                let r2 = &factors[f2].row(i2 as usize)[j0..j1];
                for q in 0..width {
                    pair[q] = r1[q] * r2[q];
                }
                cached = Some((i1, i2));
            }
            let r3 = &factors[f3].row(i3)[j0..j1];
            let v = b.vals[p];
            let arow = &mut a.data[i * rank + j0..i * rank + j1];
            let main = width / u * u;
            let mut q = 0;
            while q < main {
                for w in 0..u {
                    arow[q + w] += v * pair[q + w] * r3[q + w];
                }
                q += u;
            }
            for q in main..width {
                arow[q] += v * pair[q] * r3[q];
            }
        }
        j0 = j1;
    }
}

/// Reference implementation for correctness tests.
pub fn reference(
    b: &CooTensor4,
    c: &DenseMatrix,
    d: &DenseMatrix,
    e: &DenseMatrix,
) -> DenseMatrix {
    let rank = c.ncols;
    let mut a = DenseMatrix::zeros(b.dims[0], rank);
    for (p, [i, k, l, m]) in b.coords.iter().copied().enumerate() {
        for j in 0..rank {
            a.data[i as usize * rank + j] += b.vals[p]
                * c.get(k as usize, j)
                * d.get(l as usize, j)
                * e.get(m as usize, j);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{spec, tensor4};

    #[test]
    fn all_orders_agree_with_reference() {
        let b = tensor4(&spec("uber"), 0.002);
        let rank = 16;
        let c = DenseMatrix::random(b.dims[1], rank, 1);
        let d = DenseMatrix::random(b.dims[2], rank, 2);
        let e = DenseMatrix::random(b.dims[3], rank, 3);
        let want = reference(&b, &c, &d, &e);
        for order in [[0u8, 1, 2], [1, 0, 2], [2, 1, 0], [0, 2, 1]] {
            let s = MttkrpSchedule {
                order,
                j_tile: 8,
                chunk: 8,
                threads: 2,
                scheme: Scheme::Static,
                unroll: 4,
            };
            let (a, t) = mttkrp(&b, &c, &d, &e, &s);
            assert!(t > 0.0);
            for (x, y) in a.data.iter().zip(&want.data) {
                assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }
}
