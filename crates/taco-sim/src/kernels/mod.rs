//! The five sparse tensor-algebra kernels of the paper's TACO evaluation
//! (Sec. 5.2), each with a tunable schedule:
//!
//! | kernel | expression |
//! |---|---|
//! | [`spmv()`]   | `a(i) = Σ_k B(i,k) c(k)` |
//! | [`spmm()`]   | `A(i,j) = Σ_k B(i,k) C(k,j)` |
//! | [`sddmm()`]  | `A(i,j) = B(i,j) · Σ_k C(i,k) D(j,k)` |
//! | [`ttv()`]    | `A(i,j) = Σ_k B(i,j,k) c(k)` |
//! | [`mttkrp()`] | `A(i,j) = Σ_{k,l,m} B(i,k,l,m) C(k,j) D(l,j) E(m,j)` |

pub mod mttkrp;
pub mod sddmm;
pub mod spmm;
pub mod spmv;
pub mod ttv;

pub use mttkrp::{mttkrp, MttkrpSchedule};
pub use sddmm::{sddmm, SddmmSchedule};
pub use spmm::{spmm, SpmmSchedule};
pub use spmv::{spmv, SpmvSchedule};
pub use ttv::{ttv, TtvSchedule};

use std::time::Instant;

/// Runs `f` `reps` times and returns the **median** wall time in seconds
/// (the min is too optimistic under timer noise and rewards lucky samples).
/// `f`'s result must already be pinned by the caller (e.g. written into an
/// output buffer) so the work cannot be optimized away.
pub(crate) fn measure<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut times = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Decodes a permutation [`baco::ParamValue`] into a fixed-size order array.
pub(crate) fn order3(cfg: &baco::Configuration, name: &str) -> [u8; 3] {
    let v = cfg.value(name);
    let p = v.as_permutation();
    [p[0], p[1], p[2]]
}

/// Position of `elem` in a length-3 order.
pub(crate) fn pos(order: [u8; 3], elem: u8) -> usize {
    order.iter().position(|&e| e == elem).expect("valid permutation")
}
