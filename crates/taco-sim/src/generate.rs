//! Synthetic tensor generators reproducing the inventory of Table 4.
//!
//! The paper draws matrices from SuiteSparse, tensors from FROSTT and the
//! Facebook Activities graph. Those downloads are unavailable here, so each
//! entry is replaced by a structurally similar synthetic tensor with the same
//! dimensions and nonzero count (scaled by a [`crate::benchmarks::TacoScale`]
//! factor for tractable wall-clock): circuit-like matrices become power-law
//! graphs, PDE meshes become banded matrices, and so on. Generation is
//! deterministic per (name, scale).

use crate::sparse::{CooTensor3, CooTensor4, CsrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Structural family of a synthetic tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Uniform random coordinates.
    Uniform,
    /// Banded (mesh / PDE-like): nonzeros near the diagonal.
    Banded,
    /// Power-law row degrees (graphs, circuits, social networks).
    PowerLaw,
    /// Dense blocks on the diagonal (multiphysics coupling).
    Block,
}

/// One entry of the Table 4 inventory.
#[derive(Debug, Clone, Copy)]
pub struct TensorSpec {
    /// Paper name of the tensor.
    pub name: &'static str,
    /// Dimension sizes (unused trailing dims are 0).
    pub dims: [usize; 4],
    /// Number of tensor modes (2, 3 or 4).
    pub order: usize,
    /// Paper nonzero count.
    pub nnz: usize,
    /// Structural family used for the synthetic stand-in.
    pub family: Family,
    /// Paper-reported dataset of origin (SS / FB / FT / Rand).
    pub dataset: &'static str,
}

/// The full Table 4 inventory.
pub fn paper_tensors() -> Vec<TensorSpec> {
    use Family::*;
    let t = |name, dims, order, nnz, family, dataset| TensorSpec {
        name,
        dims,
        order,
        nnz,
        family,
        dataset,
    };
    vec![
        t("ACTIVSg10K", [20_000, 20_000, 0, 0], 2, 135_888, PowerLaw, "SS"),
        t("email-Enron", [36_692, 36_692, 0, 0], 2, 367_662, PowerLaw, "SS"),
        t("Goodwin_040", [17_922, 17_922, 0, 0], 2, 561_677, Banded, "SS"),
        t("scircuit", [170_998, 170_998, 0, 0], 2, 958_936, PowerLaw, "SS"),
        t("filter3D", [106_437, 106_437, 0, 0], 2, 2_707_179, Banded, "SS"),
        t("laminar_duct3D", [67_173, 67_173, 0, 0], 2, 3_788_857, Banded, "SS"),
        t("cage12", [130_228, 130_228, 0, 0], 2, 2_032_536, Banded, "SS"),
        t("smt", [25_710, 25_710, 0, 0], 2, 3_749_582, Block, "SS"),
        t("random2", [10_000, 10_000, 0, 0], 2, 5_000_000, Uniform, "Rand"),
        t("random1", [1000, 500, 100, 0], 3, 5_000_000, Uniform, "Rand"),
        t("facebook", [1504, 42_390, 39_986, 0], 3, 737_934, PowerLaw, "FB"),
        t("uber", [183, 24, 1140, 1717], 4, 3_309_490, Uniform, "FT"),
        t("nips", [2482, 2482, 14_036, 17], 4, 3_101_609, PowerLaw, "FT"),
        t("chicago", [6186, 24, 77, 32], 4, 5_330_673, Uniform, "FT"),
        t("uber3", [183, 1140, 1717, 0], 3, 1_117_629, Uniform, "FT*"),
    ]
}

/// Tensors used by the paper outside Table 4 (the Fig. 8/9 ablations use
/// SuiteSparse's `amazon0312`).
pub fn extra_tensors() -> Vec<TensorSpec> {
    vec![TensorSpec {
        name: "amazon0312",
        dims: [400_727, 400_727, 0, 0],
        order: 2,
        nnz: 3_200_440,
        family: Family::PowerLaw,
        dataset: "SS",
    }]
}

/// Looks up a [`TensorSpec`] by paper name (Table 4 plus the extras).
///
/// # Panics
/// Panics if the name is unknown.
pub fn spec(name: &str) -> TensorSpec {
    paper_tensors()
        .into_iter()
        .chain(extra_tensors())
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("unknown tensor `{name}`"))
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a for deterministic per-name seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn scaled_dim(d: usize, scale: f64) -> usize {
    ((d as f64 * scale.sqrt()).round() as usize).max(8)
}

fn scaled_nnz(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(64)
}

/// Generates the synthetic matrix for a 2nd-order spec, scaled so that
/// `nnz ≈ spec.nnz × scale` (dimensions scale by `√scale` to keep density).
///
/// # Panics
/// Panics if the spec is not 2nd-order.
pub fn matrix(spec: &TensorSpec, scale: f64) -> CsrMatrix {
    assert_eq!(spec.order, 2, "matrix() needs a 2nd-order spec");
    let nrows = scaled_dim(spec.dims[0], scale);
    let ncols = scaled_dim(spec.dims[1], scale);
    let nnz = scaled_nnz(spec.nnz, scale).min(nrows * ncols / 2);
    let mut rng = StdRng::seed_from_u64(seed_for(spec.name));
    let mut triplets = Vec::with_capacity(nnz);
    match spec.family {
        Family::Uniform => {
            for _ in 0..nnz {
                triplets.push((
                    rng.gen_range(0..nrows as u32),
                    rng.gen_range(0..ncols as u32),
                    rng.gen_range(0.1..1.0),
                ));
            }
        }
        Family::Banded => {
            let band = ((nnz as f64 / nrows as f64).ceil() as i64 * 2).max(3);
            for _ in 0..nnz {
                let i = rng.gen_range(0..nrows as i64);
                let off = rng.gen_range(-band..=band);
                let j = (i * ncols as i64 / nrows as i64 + off).clamp(0, ncols as i64 - 1);
                triplets.push((i as u32, j as u32, rng.gen_range(0.1..1.0)));
            }
        }
        Family::PowerLaw => {
            // Zipf-ish row degrees: row i gets weight ∝ 1/(i+1)^0.9 after a
            // random shuffle of row identities.
            let mut perm: Vec<u32> = (0..nrows as u32).collect();
            for i in (1..perm.len()).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let weights: Vec<f64> = (0..nrows).map(|i| 1.0 / (i as f64 + 1.0).powf(0.9)).collect();
            let total: f64 = weights.iter().sum();
            let mut cum = 0.0;
            let mut acc: Vec<f64> = Vec::with_capacity(nrows);
            for w in &weights {
                cum += w / total;
                acc.push(cum);
            }
            for _ in 0..nnz {
                let u: f64 = rng.gen();
                let idx = acc.partition_point(|&c| c < u).min(nrows - 1);
                let i = perm[idx];
                let j = rng.gen_range(0..ncols as u32);
                triplets.push((i, j, rng.gen_range(0.1..1.0)));
            }
        }
        Family::Block => {
            let bs = 16usize.min(nrows).max(1);
            let nblocks = nrows / bs;
            for _ in 0..nnz {
                let b = rng.gen_range(0..nblocks.max(1)) as u32;
                let i = b * bs as u32 + rng.gen_range(0..bs as u32);
                let j = (b as usize * bs + rng.gen_range(0..bs)).min(ncols - 1) as u32;
                triplets.push((i.min(nrows as u32 - 1), j, rng.gen_range(0.1..1.0)));
            }
        }
    }
    CsrMatrix::from_triplets(nrows, ncols, triplets)
}

/// Generates the synthetic 3rd-order tensor for a spec.
///
/// # Panics
/// Panics if the spec is not 3rd-order.
pub fn tensor3(spec: &TensorSpec, scale: f64) -> CooTensor3 {
    assert_eq!(spec.order, 3, "tensor3() needs a 3rd-order spec");
    let dims = [
        scaled_dim(spec.dims[0], scale),
        scaled_dim(spec.dims[1], scale),
        scaled_dim(spec.dims[2], scale),
    ];
    let nnz = scaled_nnz(spec.nnz, scale);
    let mut rng = StdRng::seed_from_u64(seed_for(spec.name));
    let skew = matches!(spec.family, Family::PowerLaw);
    let mut entries = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let i = skewed_index(&mut rng, dims[0], skew);
        let j = rng.gen_range(0..dims[1] as u32);
        let k = rng.gen_range(0..dims[2] as u32);
        entries.push(([i, j, k], rng.gen_range(0.1..1.0)));
    }
    CooTensor3::from_coords(dims, entries)
}

/// Generates the synthetic 4th-order tensor for a spec.
///
/// # Panics
/// Panics if the spec is not 4th-order.
pub fn tensor4(spec: &TensorSpec, scale: f64) -> CooTensor4 {
    assert_eq!(spec.order, 4, "tensor4() needs a 4th-order spec");
    let dims = [
        scaled_dim(spec.dims[0], scale),
        scaled_dim(spec.dims[1], scale),
        scaled_dim(spec.dims[2], scale),
        scaled_dim(spec.dims[3], scale),
    ];
    let nnz = scaled_nnz(spec.nnz, scale);
    let mut rng = StdRng::seed_from_u64(seed_for(spec.name));
    let skew = matches!(spec.family, Family::PowerLaw);
    let mut entries = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let i = skewed_index(&mut rng, dims[0], skew);
        let j = rng.gen_range(0..dims[1] as u32);
        let k = rng.gen_range(0..dims[2] as u32);
        let l = rng.gen_range(0..dims[3] as u32);
        entries.push(([i, j, k, l], rng.gen_range(0.1..1.0)));
    }
    CooTensor4::from_coords(dims, entries)
}

fn skewed_index<R: Rng + ?Sized>(rng: &mut R, dim: usize, skew: bool) -> u32 {
    if skew {
        // Square a uniform draw: density concentrates at low indices.
        let u: f64 = rng.gen();
        ((u * u * dim as f64) as usize).min(dim - 1) as u32
    } else {
        rng.gen_range(0..dim as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table4_shape() {
        let all = paper_tensors();
        assert_eq!(all.len(), 15);
        assert_eq!(all.iter().filter(|t| t.order == 2).count(), 9);
        assert_eq!(all.iter().filter(|t| t.order == 3).count(), 3);
        assert_eq!(all.iter().filter(|t| t.order == 4).count(), 3);
        // Spot-check a few paper rows.
        let sc = spec("scircuit");
        assert_eq!(sc.dims[0], 170_998);
        assert_eq!(sc.nnz, 958_936);
        let uber = spec("uber");
        assert_eq!(uber.order, 4);
        assert_eq!(uber.dims, [183, 24, 1140, 1717]);
    }

    #[test]
    fn matrix_generation_is_deterministic_and_sized() {
        let s = spec("email-Enron");
        let a = matrix(&s, 0.02);
        let b = matrix(&s, 0.02);
        assert_eq!(a, b);
        let target = (s.nnz as f64 * 0.02) as usize;
        // Duplicate collapsing loses a little; stay within 25 %.
        assert!(a.nnz() > target * 3 / 4, "nnz {} vs target {target}", a.nnz());
        assert!(a.nrows > 0 && a.ncols > 0);
    }

    #[test]
    fn power_law_rows_are_skewed() {
        let a = matrix(&spec("scircuit"), 0.02);
        let mut degrees: Vec<usize> =
            (0..a.nrows).map(|i| a.row_ptr[i + 1] - a.row_ptr[i]).collect();
        degrees.sort_unstable_by(|x, y| y.cmp(x));
        let top = degrees.iter().take(a.nrows / 100 + 1).sum::<usize>();
        // Top 1 % of rows should hold well above 1 % of nonzeros.
        assert!(
            top as f64 > 0.05 * a.nnz() as f64,
            "top-1% rows hold only {top}/{}",
            a.nnz()
        );
    }

    #[test]
    fn banded_stays_near_diagonal() {
        let a = matrix(&spec("cage12"), 0.01);
        for i in 0..a.nrows {
            let (cols, _) = a.row(i);
            for &c in cols {
                let center = i as i64 * a.ncols as i64 / a.nrows as i64;
                assert!((c as i64 - center).abs() < 2000, "row {i} col {c}");
            }
        }
    }

    #[test]
    fn tensors_generate() {
        let t3 = tensor3(&spec("facebook"), 0.01);
        assert!(t3.nnz() > 1000);
        let t4 = tensor4(&spec("uber"), 0.01);
        assert!(t4.nnz() > 1000);
        // Sorted lexicographically.
        assert!(t3.coords.windows(2).all(|w| w[0] <= w[1]));
        assert!(t4.coords.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "unknown tensor")]
    fn unknown_spec_panics() {
        spec("nonexistent");
    }
}
