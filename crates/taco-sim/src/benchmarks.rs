//! The 15 TACO benchmark instances of the paper's evaluation (Table 3 rows
//! `SpMV`/`SpMM`/`SDDMM`/`TTV`/`MTTKRP` crossed with the Table 4–5 tensors),
//! packaged as [`baco::benchmark::Benchmark`] values.

use crate::generate::{matrix, spec, tensor3, tensor4};
use crate::kernels::{
    mttkrp, sddmm, spmm, spmv, ttv, MttkrpSchedule, SddmmSchedule, SpmmSchedule, SpmvSchedule,
    TtvSchedule,
};
use crate::sparse::{CooTensor3, CooTensor4, CsrMatrix, DenseMatrix};
use baco::benchmark::{Benchmark, Group};
use baco::{BlackBox, Configuration, Evaluation, ParamValue, SearchSpace};
use std::sync::Arc;

/// How far the paper tensors are scaled down (nnz multiplier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TacoScale {
    /// ~0.2 % of paper nonzeros — unit/integration tests.
    Test,
    /// ~2 % of paper nonzeros — the default for experiment sweeps.
    Small,
    /// ~10 % of paper nonzeros — slower, closer to paper conditions.
    Large,
}

impl TacoScale {
    /// The nnz multiplier.
    pub fn factor(self) -> f64 {
        match self {
            TacoScale::Test => 0.002,
            TacoScale::Small => 0.02,
            TacoScale::Large => 0.1,
        }
    }
}

const SPMM_RANK: usize = 32;
const SDDMM_RANK: usize = 32;
const MTTKRP_RANK: usize = 16;

// ───────────────────────── search spaces ─────────────────────────

/// SpMV search space: 7 parameters (O/C/P with known constraints).
pub fn spmv_space() -> SearchSpace {
    SearchSpace::builder()
        .permutation("order", 3)
        .ordinal_log("block", vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0])
        .ordinal_log("chunk", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0])
        .ordinal_log("threads", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .categorical("scheme", vec!["static", "dynamic"])
        .ordinal_log("unroll", vec![1.0, 2.0, 4.0, 8.0])
        .categorical("acc", vec!["scalar", "wide"])
        // Split hierarchy: the outer split must precede the inner.
        .known_constraint("pos(order, 0) < pos(order, 1)")
        // A parallel chunk never exceeds its row block.
        .known_constraint("block >= chunk")
        .build()
        .expect("valid SpMV space")
}

/// SpMM search space: 6 parameters.
pub fn spmm_space() -> SearchSpace {
    SearchSpace::builder()
        .permutation("order", 3)
        .ordinal_log("j_tile", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .ordinal_log("chunk", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0])
        .ordinal_log("threads", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .categorical("scheme", vec!["static", "dynamic"])
        .ordinal_log("unroll", vec![1.0, 2.0, 4.0, 8.0])
        // Concordant CSR traversal: i before k.
        .known_constraint("pos(order, 0) < pos(order, 1)")
        .known_constraint("unroll <= j_tile")
        .build()
        .expect("valid SpMM space")
}

/// SDDMM search space: 6 parameters.
pub fn sddmm_space() -> SearchSpace {
    SearchSpace::builder()
        .permutation("order", 3)
        .ordinal_log("k_tile", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .ordinal_log("chunk", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0])
        .ordinal_log("threads", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .categorical("scheme", vec!["static", "dynamic"])
        .ordinal_log("unroll", vec![1.0, 2.0, 4.0, 8.0])
        // Concordant traversal of the sampled sparse matrix: i before j.
        .known_constraint("pos(order, 0) < pos(order, 1)")
        .known_constraint("unroll <= k_tile")
        .build()
        .expect("valid SDDMM space")
}

/// TTV search space: 7 parameters (hidden workspace constraint at runtime).
pub fn ttv_space() -> SearchSpace {
    SearchSpace::builder()
        .permutation("order", 3)
        .categorical("workspace", vec!["direct", "dense"])
        .ordinal_log("chunk", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0])
        .ordinal_log("threads", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .categorical("scheme", vec!["static", "dynamic"])
        .ordinal_log("unroll", vec![1.0, 2.0, 4.0, 8.0])
        .ordinal_log("block", vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0])
        .known_constraint("pos(order, 0) < pos(order, 1)")
        .known_constraint("block >= chunk")
        .build()
        .expect("valid TTV space")
}

/// MTTKRP search space: 6 parameters.
pub fn mttkrp_space() -> SearchSpace {
    SearchSpace::builder()
        .permutation("order", 3)
        .ordinal_log("j_tile", vec![1.0, 2.0, 4.0, 8.0, 16.0])
        .ordinal_log("chunk", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0])
        .ordinal_log("threads", vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        .categorical("scheme", vec!["static", "dynamic"])
        .ordinal_log("unroll", vec![1.0, 2.0, 4.0])
        // Concordant reduction: k before m in the sorted coordinate order.
        .known_constraint("pos(order, 0) < pos(order, 2)")
        .known_constraint("unroll <= j_tile")
        .build()
        .expect("valid MTTKRP space")
}

// ───────────────────────── black boxes ─────────────────────────

struct SpmvBench {
    a: Arc<CsrMatrix>,
    csc: Arc<CsrMatrix>,
    x: Vec<f64>,
    name: String,
}

impl BlackBox for SpmvBench {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let sched = SpmvSchedule::from_config(cfg);
        let (_, secs) = spmv(&self.a, &self.csc, &self.x, &sched);
        Evaluation::feasible(secs * 1e3)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

struct SpmmBench {
    b: Arc<CsrMatrix>,
    c: DenseMatrix,
    name: String,
}

impl BlackBox for SpmmBench {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let sched = SpmmSchedule::from_config(cfg);
        let (_, secs) = spmm(&self.b, &self.c, &sched);
        Evaluation::feasible(secs * 1e3)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

struct SddmmBench {
    b: Arc<CsrMatrix>,
    c: DenseMatrix,
    d: DenseMatrix,
    name: String,
}

impl BlackBox for SddmmBench {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let sched = SddmmSchedule::from_config(cfg);
        let (_, secs) = sddmm(&self.b, &self.c, &self.d, &sched);
        Evaluation::feasible(secs * 1e3)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

struct TtvBench {
    b: Arc<CooTensor3>,
    c: Vec<f64>,
    name: String,
}

impl BlackBox for TtvBench {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let sched = TtvSchedule::from_config(cfg);
        match ttv(&self.b, &self.c, &sched) {
            Some((_, secs)) => Evaluation::feasible(secs * 1e3),
            None => Evaluation::infeasible(),
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
}

struct MttkrpBench {
    b: Arc<CooTensor4>,
    c: DenseMatrix,
    d: DenseMatrix,
    e: DenseMatrix,
    name: String,
}

impl BlackBox for MttkrpBench {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let sched = MttkrpSchedule::from_config(cfg);
        let (_, secs) = mttkrp(&self.b, &self.c, &self.d, &self.e, &sched);
        Evaluation::feasible(secs * 1e3)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

// ───────────────────── default / expert configs ─────────────────────

fn perm(v: &[u8]) -> ParamValue {
    ParamValue::Permutation(v.to_vec())
}

fn cfg(space: &SearchSpace, pairs: &[(&str, ParamValue)]) -> Configuration {
    space.configuration(pairs).expect("valid reference configuration")
}

fn spmv_default(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("block", ParamValue::Ordinal(4096.0)),
            ("chunk", ParamValue::Ordinal(256.0)),
            ("threads", ParamValue::Ordinal(1.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(1.0)),
            ("acc", ParamValue::Categorical("scalar".into())),
        ],
    )
}

fn spmv_expert(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("block", ParamValue::Ordinal(8192.0)),
            ("chunk", ParamValue::Ordinal(256.0)),
            ("threads", ParamValue::Ordinal(4.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(8.0)),
            ("acc", ParamValue::Categorical("scalar".into())),
        ],
    )
}

fn spmm_default(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("j_tile", ParamValue::Ordinal(32.0)),
            ("chunk", ParamValue::Ordinal(256.0)),
            ("threads", ParamValue::Ordinal(1.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(1.0)),
        ],
    )
}

fn spmm_expert(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("j_tile", ParamValue::Ordinal(32.0)),
            ("chunk", ParamValue::Ordinal(256.0)),
            ("threads", ParamValue::Ordinal(8.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(2.0)),
        ],
    )
}

fn sddmm_default(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("k_tile", ParamValue::Ordinal(32.0)),
            ("chunk", ParamValue::Ordinal(256.0)),
            ("threads", ParamValue::Ordinal(1.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(1.0)),
        ],
    )
}

fn sddmm_expert(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("k_tile", ParamValue::Ordinal(32.0)),
            ("chunk", ParamValue::Ordinal(64.0)),
            ("threads", ParamValue::Ordinal(4.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(4.0)),
        ],
    )
}

fn ttv_default(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("workspace", ParamValue::Categorical("direct".into())),
            ("chunk", ParamValue::Ordinal(128.0)),
            ("threads", ParamValue::Ordinal(1.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(1.0)),
            ("block", ParamValue::Ordinal(1024.0)),
        ],
    )
}

fn ttv_expert(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("workspace", ParamValue::Categorical("direct".into())),
            ("chunk", ParamValue::Ordinal(8.0)),
            ("threads", ParamValue::Ordinal(8.0)),
            ("scheme", ParamValue::Categorical("dynamic".into())),
            ("unroll", ParamValue::Ordinal(4.0)),
            ("block", ParamValue::Ordinal(1024.0)),
        ],
    )
}

fn mttkrp_default(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("j_tile", ParamValue::Ordinal(16.0)),
            ("chunk", ParamValue::Ordinal(128.0)),
            ("threads", ParamValue::Ordinal(1.0)),
            ("scheme", ParamValue::Categorical("static".into())),
            ("unroll", ParamValue::Ordinal(1.0)),
        ],
    )
}

fn mttkrp_expert(space: &SearchSpace) -> Configuration {
    cfg(
        space,
        &[
            ("order", perm(&[0, 1, 2])),
            ("j_tile", ParamValue::Ordinal(16.0)),
            ("chunk", ParamValue::Ordinal(1.0)),
            ("threads", ParamValue::Ordinal(16.0)),
            ("scheme", ParamValue::Categorical("dynamic".into())),
            ("unroll", ParamValue::Ordinal(4.0)),
        ],
    )
}

// ───────────────────── instance construction ─────────────────────

/// Builds one SpMV instance.
pub fn spmv_benchmark(tensor: &str, scale: TacoScale) -> Benchmark {
    let a = Arc::new(matrix(&spec(tensor), scale.factor()));
    let csc = Arc::new(a.to_csc());
    let x: Vec<f64> = (0..a.ncols).map(|i| 0.1 + (i % 13) as f64 * 0.07).collect();
    let space = spmv_space();
    Benchmark {
        name: format!("SpMV {tensor}"),
        group: Group::Taco,
        default_config: spmv_default(&space),
        expert_config: Some(spmv_expert(&space)),
        blackbox: Box::new(SpmvBench {
            a,
            csc,
            x,
            name: format!("SpMV {tensor}"),
        }),
        space,
        budget: 70,
        has_hidden_constraints: false,
        objective_names: vec!["runtime_ms".into()],
        reference_point: None,
    }
}

/// Builds one SpMM instance.
pub fn spmm_benchmark(tensor: &str, scale: TacoScale) -> Benchmark {
    let b = Arc::new(matrix(&spec(tensor), scale.factor()));
    let c = DenseMatrix::random(b.ncols, SPMM_RANK, 11);
    let space = spmm_space();
    Benchmark {
        name: format!("SpMM {tensor}"),
        group: Group::Taco,
        default_config: spmm_default(&space),
        expert_config: Some(spmm_expert(&space)),
        blackbox: Box::new(SpmmBench {
            b,
            c,
            name: format!("SpMM {tensor}"),
        }),
        space,
        budget: 60,
        has_hidden_constraints: false,
        objective_names: vec!["runtime_ms".into()],
        reference_point: None,
    }
}

/// Analytic DRAM-traffic model (MB) of one SpMM execution under `sched`:
/// the CSR operand is streamed once per `j`-tile pass (`⌈rank/j_tile⌉`
/// passes), the dense operand is gathered per nonzero, and a tiled output
/// pays read-modify-write. Deterministic in the schedule and matrix shape —
/// the second objective of [`spmm_pareto_benchmark`], trading locality
/// (small tiles) against re-streaming (many passes).
fn spmm_traffic_mb(b: &CsrMatrix, sched: &SpmmSchedule) -> f64 {
    let passes = SPMM_RANK.div_ceil(sched.j_tile.max(1)) as f64;
    let nnz = b.nnz() as f64;
    // 12 bytes per CSR nonzero (index + value), re-streamed every pass.
    let stream_b = nnz * 12.0 * passes;
    // Dense rows gathered per nonzero: j_tile values per visit, every pass.
    let gather_c = nnz * (sched.j_tile.min(SPMM_RANK) as f64) * 8.0 * passes;
    // Output strip: written once, read-modify-written when tiled.
    let out_a = (b.nrows * SPMM_RANK * 8) as f64 * if passes > 1.0 { 2.0 } else { 1.0 };
    (stream_b + gather_c + out_a) / 1e6
}

struct SpmmParetoBench {
    b: Arc<CsrMatrix>,
    c: DenseMatrix,
    name: String,
}

impl BlackBox for SpmmParetoBench {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let sched = SpmmSchedule::from_config(cfg);
        let (_, secs) = spmm(&self.b, &self.c, &sched);
        Evaluation::feasible_multi(vec![secs * 1e3, spmm_traffic_mb(&self.b, &sched)])
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// The SpMM **runtime-vs-traffic** variant: wall-clock milliseconds plus the
/// schedule's analytic DRAM traffic (`spmm_traffic_mb`) as a second
/// minimized objective.
pub fn spmm_pareto_benchmark(tensor: &str, scale: TacoScale) -> Benchmark {
    let b = Arc::new(matrix(&spec(tensor), scale.factor()));
    let c = DenseMatrix::random(b.ncols, SPMM_RANK, 11);
    // Traffic is bounded by the all-passes worst case; runtime by a loose
    // wall-clock ceiling for the scaled tensor.
    let worst_traffic = {
        let worst = SpmmSchedule {
            order: [0, 1, 2],
            j_tile: 1,
            chunk: 1,
            threads: 1,
            scheme: crate::parallel::Scheme::Static,
            unroll: 1,
        };
        spmm_traffic_mb(&b, &worst) * 1.5
    };
    let space = spmm_space();
    Benchmark {
        name: format!("SpMM-pareto {tensor}"),
        group: Group::Taco,
        default_config: spmm_default(&space),
        expert_config: Some(spmm_expert(&space)),
        blackbox: Box::new(SpmmParetoBench {
            b,
            c,
            name: format!("SpMM-pareto {tensor}"),
        }),
        space,
        budget: 60,
        has_hidden_constraints: false,
        objective_names: vec!["runtime_ms".into(), "traffic_mb".into()],
        reference_point: Some(vec![10_000.0, worst_traffic]),
    }
}

/// Builds one SDDMM instance.
pub fn sddmm_benchmark(tensor: &str, scale: TacoScale) -> Benchmark {
    let b = Arc::new(matrix(&spec(tensor), scale.factor()));
    let c = DenseMatrix::random(b.nrows, SDDMM_RANK, 21);
    let d = DenseMatrix::random(b.ncols, SDDMM_RANK, 22);
    let space = sddmm_space();
    Benchmark {
        name: format!("SDDMM {tensor}"),
        group: Group::Taco,
        default_config: sddmm_default(&space),
        expert_config: Some(sddmm_expert(&space)),
        blackbox: Box::new(SddmmBench {
            b,
            c,
            d,
            name: format!("SDDMM {tensor}"),
        }),
        space,
        budget: 60,
        has_hidden_constraints: false,
        objective_names: vec!["runtime_ms".into()],
        reference_point: None,
    }
}

/// Builds one TTV instance.
pub fn ttv_benchmark(tensor: &str, scale: TacoScale) -> Benchmark {
    let b = Arc::new(tensor3(&spec(tensor), scale.factor()));
    let c: Vec<f64> = (0..b.dims[2]).map(|k| 0.2 + (k % 7) as f64 * 0.05).collect();
    let space = ttv_space();
    Benchmark {
        name: format!("TTV {tensor}"),
        group: Group::Taco,
        default_config: ttv_default(&space),
        expert_config: Some(ttv_expert(&space)),
        blackbox: Box::new(TtvBench {
            b,
            c,
            name: format!("TTV {tensor}"),
        }),
        space,
        budget: 70,
        has_hidden_constraints: true,
        objective_names: vec!["runtime_ms".into()],
        reference_point: None,
    }
}

/// Builds one MTTKRP instance.
pub fn mttkrp_benchmark(tensor: &str, scale: TacoScale) -> Benchmark {
    let b = Arc::new(tensor4(&spec(tensor), scale.factor()));
    let c = DenseMatrix::random(b.dims[1], MTTKRP_RANK, 31);
    let d = DenseMatrix::random(b.dims[2], MTTKRP_RANK, 32);
    let e = DenseMatrix::random(b.dims[3], MTTKRP_RANK, 33);
    let space = mttkrp_space();
    Benchmark {
        name: format!("MTTKRP {tensor}"),
        group: Group::Taco,
        default_config: mttkrp_default(&space),
        expert_config: Some(mttkrp_expert(&space)),
        blackbox: Box::new(MttkrpBench {
            b,
            c,
            d,
            e,
            name: format!("MTTKRP {tensor}"),
        }),
        space,
        budget: 60,
        has_hidden_constraints: false,
        objective_names: vec!["runtime_ms".into()],
        reference_point: None,
    }
}

/// The full TACO suite: the 15 kernel × tensor instances of Tables 5–8.
pub fn taco_benchmarks(scale: TacoScale) -> Vec<Benchmark> {
    vec![
        spmm_benchmark("scircuit", scale),
        spmm_benchmark("cage12", scale),
        spmm_benchmark("laminar_duct3D", scale),
        sddmm_benchmark("email-Enron", scale),
        sddmm_benchmark("ACTIVSg10K", scale),
        sddmm_benchmark("Goodwin_040", scale),
        mttkrp_benchmark("uber", scale),
        mttkrp_benchmark("nips", scale),
        mttkrp_benchmark("chicago", scale),
        ttv_benchmark("facebook", scale),
        ttv_benchmark("uber3", scale),
        ttv_benchmark("random1", scale),
        spmv_benchmark("laminar_duct3D", scale),
        spmv_benchmark("cage12", scale),
        spmv_benchmark("filter3D", scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_matches_paper() {
        let benches = taco_benchmarks(TacoScale::Test);
        assert_eq!(benches.len(), 15);
        for b in &benches {
            assert_eq!(b.group, Group::Taco);
            assert!(b.space.len() >= 6 && b.space.len() <= 7, "{}", b.name);
            assert!(b.param_kinds().contains('P'), "{} lacks permutation", b.name);
            assert!(!b.space.known_constraints().is_empty(), "{}", b.name);
        }
        // TTV carries the hidden constraint.
        assert!(benches.iter().filter(|b| b.has_hidden_constraints).count() == 3);
    }

    #[test]
    fn default_and_expert_evaluate() {
        for b in taco_benchmarks(TacoScale::Test) {
            let dv = b.default_value().unwrap();
            let ev = b.expert_value().unwrap();
            assert!(dv > 0.0 && ev > 0.0, "{}: default {dv}, expert {ev}", b.name);
        }
    }

    #[test]
    fn reference_configs_satisfy_known_constraints() {
        for b in taco_benchmarks(TacoScale::Test) {
            assert!(b.space.satisfies_known(&b.default_config).unwrap(), "{}", b.name);
            assert!(
                b.space.satisfies_known(b.expert_config.as_ref().unwrap()).unwrap(),
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn ttv_has_hidden_infeasible_region() {
        let b = ttv_benchmark("random1", TacoScale::Test);
        // dense workspace × 8 threads on the (scaled) random1 tensor:
        // depending on dims this may or may not trip the limit; construct the
        // worst schedule and check both paths are reachable across scales.
        let worst = b
            .space
            .configuration(&[
                ("order", ParamValue::Permutation(vec![0, 1, 2])),
                ("workspace", ParamValue::Categorical("dense".into())),
                ("chunk", ParamValue::Ordinal(8.0)),
                ("threads", ParamValue::Ordinal(8.0)),
                ("scheme", ParamValue::Categorical("dynamic".into())),
                ("unroll", ParamValue::Ordinal(1.0)),
                ("block", ParamValue::Ordinal(64.0)),
            ])
            .unwrap();
        // Must evaluate without panicking either way.
        let _ = b.blackbox.evaluate(&worst);
    }

    #[test]
    fn feasible_sizes_are_smaller_than_dense() {
        for b in taco_benchmarks(TacoScale::Test).into_iter().take(4) {
            let cot = baco::cot::ChainOfTrees::build(&b.space).unwrap();
            let dense = b.space.dense_size().unwrap();
            assert!(cot.feasible_size() < dense, "{}", b.name);
        }
    }
}
