//! The parallel-execution model: measured single-thread kernel time is
//! distributed over row-chunks proportionally to their work, and the
//! multi-threaded runtime is the makespan of assigning those chunks to
//! threads — round-robin for `static` scheduling, greedy least-loaded for
//! `dynamic` — plus realistic per-chunk and per-thread overheads.
//!
//! Load imbalance is therefore driven by the *real* nonzero structure: a
//! power-law matrix with large static chunks concentrates work on one thread
//! exactly as it would on hardware.

/// Per-chunk dispatch overhead of static round-robin scheduling (seconds).
pub const STATIC_CHUNK_OVERHEAD: f64 = 60e-9;
/// Per-chunk dispatch overhead of dynamic (work-queue) scheduling (seconds).
pub const DYNAMIC_CHUNK_OVERHEAD: f64 = 220e-9;
/// Per-thread fork/join overhead per kernel launch (seconds).
pub const THREAD_OVERHEAD: f64 = 12e-6;

/// How row-chunks are assigned to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Chunk `c` runs on thread `c mod threads`.
    Static,
    /// Chunks are pulled from a queue (modeled as greedy least-loaded,
    /// the long-run behaviour of a work queue).
    Dynamic,
}

/// A parallel execution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Number of worker threads.
    pub threads: usize,
    /// How chunks are assigned.
    pub scheme: Scheme,
}

/// Splits `row_work` (work units per row, e.g. nonzeros) into chunks of
/// `chunk_rows` rows and returns the per-chunk totals.
pub fn chunk_work(row_work: &[f64], chunk_rows: usize) -> Vec<f64> {
    let chunk_rows = chunk_rows.max(1);
    row_work
        .chunks(chunk_rows)
        .map(|c| c.iter().sum())
        .collect()
}

/// Simulated parallel runtime: `measured_serial` seconds of real work,
/// distributed over `chunk_costs` (arbitrary nonnegative weights), executed
/// under `policy`.
///
/// With one thread this degenerates to `measured_serial` plus chunk
/// overheads, so the tuner still pays for absurdly small chunks.
pub fn parallel_time(measured_serial: f64, chunk_costs: &[f64], policy: Policy) -> f64 {
    let threads = policy.threads.max(1);
    let total_work: f64 = chunk_costs.iter().sum();
    if chunk_costs.is_empty() || total_work <= 0.0 {
        return measured_serial + THREAD_OVERHEAD * threads as f64;
    }
    let per_chunk_overhead = match policy.scheme {
        Scheme::Static => STATIC_CHUNK_OVERHEAD,
        Scheme::Dynamic => DYNAMIC_CHUNK_OVERHEAD,
    };
    let scale = measured_serial / total_work;
    let makespan_work = if threads == 1 {
        total_work
    } else {
        match policy.scheme {
            Scheme::Static => {
                let mut loads = vec![0.0f64; threads];
                for (c, &w) in chunk_costs.iter().enumerate() {
                    loads[c % threads] += w;
                }
                loads.into_iter().fold(0.0, f64::max)
            }
            Scheme::Dynamic => {
                // Greedy: each chunk (in order) goes to the least-loaded
                // thread — the fluid limit of a work queue.
                let mut loads = vec![0.0f64; threads];
                for &w in chunk_costs {
                    let (mi, _) = loads
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .expect("threads >= 1");
                    loads[mi] += w;
                }
                loads.into_iter().fold(0.0, f64::max)
            }
        }
    };
    let chunks_per_thread = (chunk_costs.len() as f64 / threads as f64).ceil();
    makespan_work * scale
        + chunks_per_thread * per_chunk_overhead
        + THREAD_OVERHEAD * threads as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_sums_rows() {
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(chunk_work(&w, 2), vec![3.0, 7.0, 5.0]);
        assert_eq!(chunk_work(&w, 10), vec![15.0]);
        assert_eq!(chunk_work(&w, 0), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn balanced_work_scales_nearly_linearly() {
        let chunks = vec![1.0; 64];
        let t1 = parallel_time(1.0, &chunks, Policy { threads: 1, scheme: Scheme::Static });
        let t4 = parallel_time(1.0, &chunks, Policy { threads: 4, scheme: Scheme::Static });
        assert!(t4 < t1 / 3.0, "t1 {t1} t4 {t4}");
    }

    #[test]
    fn skewed_static_chunks_bottleneck_one_thread() {
        // One giant chunk dominates: static or dynamic, makespan ≈ big chunk.
        let mut chunks = vec![0.01; 63];
        chunks.push(10.0);
        let t4 = parallel_time(1.0, &chunks, Policy { threads: 4, scheme: Scheme::Static });
        // The big chunk is ~94 % of the work → hardly any speedup.
        assert!(t4 > 0.9, "t4 {t4}");
    }

    #[test]
    fn dynamic_beats_static_on_alternating_skew() {
        // Round-robin static puts all heavy chunks on thread 0 when the
        // pattern period matches the thread count; dynamic rebalances.
        let mut chunks = Vec::new();
        for i in 0..32 {
            chunks.push(if i % 4 == 0 { 1.0 } else { 0.01 });
        }
        let st = parallel_time(1.0, &chunks, Policy { threads: 4, scheme: Scheme::Static });
        let dy = parallel_time(1.0, &chunks, Policy { threads: 4, scheme: Scheme::Dynamic });
        assert!(dy < st, "dynamic {dy} vs static {st}");
    }

    #[test]
    fn tiny_chunks_pay_overhead() {
        let many = vec![0.001; 10_000];
        let few = vec![1.0; 10];
        let t_many = parallel_time(0.001, &many, Policy { threads: 2, scheme: Scheme::Dynamic });
        let t_few = parallel_time(0.001, &few, Policy { threads: 2, scheme: Scheme::Dynamic });
        assert!(t_many > t_few * 2.0, "many {t_many} few {t_few}");
    }

    #[test]
    fn empty_work_is_overhead_only() {
        let t = parallel_time(0.5, &[], Policy { threads: 2, scheme: Scheme::Static });
        assert!(t >= 0.5);
    }
}
