//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! bench-harness API used by `crates/bench/benches/microbench.rs`.
//!
//! The registry is unreachable from the build environment, so this shim
//! provides the same surface (`Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) with a much simpler measurement
//! strategy: an adaptive warmup followed by batched timing, reporting the
//! median nanoseconds per iteration. Set `BACO_BENCH_JSON=<path>` to also
//! write every result as a machine-readable JSON array.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified id, `group/function[/param]`.
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Identifier combining a function name and a parameter, as in real criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fit", 60)` → `fit/60`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Conversion of the various id forms accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measured: Option<(f64, u64)>,
    measure_time: Duration,
}

impl Bencher {
    /// Times `f`, adaptively choosing the iteration count so the measurement
    /// fits the configured budget even for second-scale benchmarks.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: one untimed call, one timed call.
        std::hint::black_box(f());
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);

        let budget = self.measure_time.as_secs_f64();
        // Per-sample iteration count targeting ~1/5 of the budget per sample.
        let per_sample = ((budget / 5.0 / once).floor() as u64).clamp(1, 1_000_000);
        let mut samples = Vec::new();
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.measure_time;
        while samples.len() < 5 || (Instant::now() < deadline && samples.len() < 100) {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / per_sample as f64);
            total_iters += per_sample;
            if samples.len() >= 5 && Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2] * 1e9;
        self.measured = Some((median, total_iters));
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measure_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's adaptive timing ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let mt = self.measure_time;
        self.criterion.run_one(id, mt, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measure_time: default_measure_time(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), default_measure_time(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, measure_time: Duration, mut f: F) {
        let mut b = Bencher {
            measured: None,
            measure_time,
        };
        f(&mut b);
        let (median_ns, iters) = b.measured.unwrap_or((f64::NAN, 0));
        println!("bench {id:<48} {:>14} /iter  ({iters} iters)", fmt_ns(median_ns));
        self.results.push(BenchResult {
            id,
            median_ns,
            iters,
        });
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the summary and honors `BACO_BENCH_JSON`.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BACO_BENCH_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                out.push_str(&format!(
                    "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"iters\": {}}}{}\n",
                    r.id.replace('"', "'"),
                    r.median_ns,
                    r.iters,
                    if i + 1 < self.results.len() { "," } else { "" }
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("BACO_BENCH_JSON: failed to write {path}: {e}");
            }
        }
        println!("{} benchmarks measured", self.results.len());
    }
}

fn default_measure_time() -> Duration {
    match std::env::var("BACO_BENCH_MEASURE_MS") {
        Ok(ms) => Duration::from_millis(ms.parse().unwrap_or(300)),
        Err(_) => Duration::from_millis(300),
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".into()
    } else if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a single registration function, mirroring
/// real criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running every group, mirroring real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(20));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].median_ns >= 0.0);
        assert_eq!(c.results()[1].id, "g/param/3");
    }
}
