//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! API used by `tests/property_based.rs`.
//!
//! Supports the `proptest!` macro with `#![proptest_config(..)]`, range
//! strategies (`lo..hi` on integer types), `prop_assert!`, `prop_assert_eq!`
//! and `TestCaseError::fail`. Cases are generated from a fixed seed, so runs
//! are deterministic (no shrinking — a failing case prints its inputs
//! instead).

use std::fmt;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure of a single generated case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with an explanatory message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Value generators. Implemented for integer ranges, which is all the test
/// suite uses.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut rand::rngs::StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with a value-reporting message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// `prop_assert!(a != b)` with a value-reporting message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Declares deterministic property tests; see the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Seed derived from the test name so sibling tests explore
            // different streams but each run is reproducible.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!($crate::__proptest_items!(@fmt $($arg),+), $($arg),+);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}\n  inputs: {inputs}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (@fmt $a:ident) => { concat!(stringify!($a), " = {:?}") };
    (@fmt $a:ident, $($rest:ident),+) => {
        concat!(stringify!($a), " = {:?}, ", $crate::__proptest_items!(@fmt $($rest),+))
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Addition commutes.
        #[test]
        fn addition_commutes(a in 0i64..100, b in 0i64..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a + b >= a, "sum shrank: {} + {}", a, b);
        }

        #[test]
        fn ranges_respected(m in 1usize..8, r in 0u64..5040) {
            prop_assert!((1..8).contains(&m));
            prop_assert!(r < 5040);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0i64..10) {
                prop_assert!(x < 0);
            }
        }
        inner();
    }
}
