/root/repo/target/debug/examples/fpga_design_space_exploration-0bd9be2217533a97.d: examples/fpga_design_space_exploration.rs

/root/repo/target/debug/examples/fpga_design_space_exploration-0bd9be2217533a97: examples/fpga_design_space_exploration.rs

examples/fpga_design_space_exploration.rs:
