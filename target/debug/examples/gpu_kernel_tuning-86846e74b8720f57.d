/root/repo/target/debug/examples/gpu_kernel_tuning-86846e74b8720f57.d: examples/gpu_kernel_tuning.rs

/root/repo/target/debug/examples/gpu_kernel_tuning-86846e74b8720f57: examples/gpu_kernel_tuning.rs

examples/gpu_kernel_tuning.rs:
