/root/repo/target/debug/examples/custom_backend-1472c75ffa2c159d.d: examples/custom_backend.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_backend-1472c75ffa2c159d.rmeta: examples/custom_backend.rs Cargo.toml

examples/custom_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
