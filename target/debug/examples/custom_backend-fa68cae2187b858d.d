/root/repo/target/debug/examples/custom_backend-fa68cae2187b858d.d: examples/custom_backend.rs

/root/repo/target/debug/examples/custom_backend-fa68cae2187b858d: examples/custom_backend.rs

examples/custom_backend.rs:
