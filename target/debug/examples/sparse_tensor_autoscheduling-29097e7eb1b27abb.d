/root/repo/target/debug/examples/sparse_tensor_autoscheduling-29097e7eb1b27abb.d: examples/sparse_tensor_autoscheduling.rs

/root/repo/target/debug/examples/sparse_tensor_autoscheduling-29097e7eb1b27abb: examples/sparse_tensor_autoscheduling.rs

examples/sparse_tensor_autoscheduling.rs:
