/root/repo/target/debug/examples/fpga_design_space_exploration-258f722606c1cd33.d: examples/fpga_design_space_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libfpga_design_space_exploration-258f722606c1cd33.rmeta: examples/fpga_design_space_exploration.rs Cargo.toml

examples/fpga_design_space_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
