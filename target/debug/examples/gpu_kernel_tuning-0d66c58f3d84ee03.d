/root/repo/target/debug/examples/gpu_kernel_tuning-0d66c58f3d84ee03.d: examples/gpu_kernel_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libgpu_kernel_tuning-0d66c58f3d84ee03.rmeta: examples/gpu_kernel_tuning.rs Cargo.toml

examples/gpu_kernel_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
