/root/repo/target/debug/examples/quickstart-f6d72cc80f9fd81b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f6d72cc80f9fd81b: examples/quickstart.rs

examples/quickstart.rs:
