/root/repo/target/debug/examples/sparse_tensor_autoscheduling-857dc85abfa1795b.d: examples/sparse_tensor_autoscheduling.rs Cargo.toml

/root/repo/target/debug/examples/libsparse_tensor_autoscheduling-857dc85abfa1795b.rmeta: examples/sparse_tensor_autoscheduling.rs Cargo.toml

examples/sparse_tensor_autoscheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
