/root/repo/target/debug/deps/table5-519d9978120b680a.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-519d9978120b680a: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
