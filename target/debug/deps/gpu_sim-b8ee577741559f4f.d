/root/repo/target/debug/deps/gpu_sim-b8ee577741559f4f.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

/root/repo/target/debug/deps/libgpu_sim-b8ee577741559f4f.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

/root/repo/target/debug/deps/libgpu_sim-b8ee577741559f4f.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/benchmarks.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernels/mod.rs:
crates/gpu-sim/src/kernels/asum.rs:
crates/gpu-sim/src/kernels/harris.rs:
crates/gpu-sim/src/kernels/kmeans.rs:
crates/gpu-sim/src/kernels/mm_cpu.rs:
crates/gpu-sim/src/kernels/mm_gpu.rs:
crates/gpu-sim/src/kernels/scal.rs:
crates/gpu-sim/src/kernels/stencil.rs:
