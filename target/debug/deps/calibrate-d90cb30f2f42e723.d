/root/repo/target/debug/deps/calibrate-d90cb30f2f42e723.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-d90cb30f2f42e723: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
