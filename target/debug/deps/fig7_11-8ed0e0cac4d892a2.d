/root/repo/target/debug/deps/fig7_11-8ed0e0cac4d892a2.d: crates/bench/src/bin/fig7_11.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_11-8ed0e0cac4d892a2.rmeta: crates/bench/src/bin/fig7_11.rs Cargo.toml

crates/bench/src/bin/fig7_11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
