/root/repo/target/debug/deps/baco_repro-c8db827a4237a5ef.d: src/lib.rs

/root/repo/target/debug/deps/libbaco_repro-c8db827a4237a5ef.rlib: src/lib.rs

/root/repo/target/debug/deps/libbaco_repro-c8db827a4237a5ef.rmeta: src/lib.rs

src/lib.rs:
