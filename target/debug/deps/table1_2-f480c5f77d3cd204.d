/root/repo/target/debug/deps/table1_2-f480c5f77d3cd204.d: crates/bench/src/bin/table1_2.rs

/root/repo/target/debug/deps/table1_2-f480c5f77d3cd204: crates/bench/src/bin/table1_2.rs

crates/bench/src/bin/table1_2.rs:
