/root/repo/target/debug/deps/property_based-094bdbb917c94875.d: tests/property_based.rs

/root/repo/target/debug/deps/property_based-094bdbb917c94875: tests/property_based.rs

tests/property_based.rs:
