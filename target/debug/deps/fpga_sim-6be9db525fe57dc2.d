/root/repo/target/debug/deps/fpga_sim-6be9db525fe57dc2.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs Cargo.toml

/root/repo/target/debug/deps/libfpga_sim-6be9db525fe57dc2.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs Cargo.toml

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/benchmarks.rs:
crates/fpga-sim/src/device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
