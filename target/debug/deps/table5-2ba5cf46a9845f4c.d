/root/repo/target/debug/deps/table5-2ba5cf46a9845f4c.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-2ba5cf46a9845f4c.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
