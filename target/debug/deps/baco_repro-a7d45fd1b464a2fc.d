/root/repo/target/debug/deps/baco_repro-a7d45fd1b464a2fc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbaco_repro-a7d45fd1b464a2fc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
