/root/repo/target/debug/deps/gpu_sim-baf42131a62216d3.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_sim-baf42131a62216d3.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/benchmarks.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernels/mod.rs:
crates/gpu-sim/src/kernels/asum.rs:
crates/gpu-sim/src/kernels/harris.rs:
crates/gpu-sim/src/kernels/kmeans.rs:
crates/gpu-sim/src/kernels/mm_cpu.rs:
crates/gpu-sim/src/kernels/mm_gpu.rs:
crates/gpu-sim/src/kernels/scal.rs:
crates/gpu-sim/src/kernels/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
