/root/repo/target/debug/deps/cot_timing-d40689a9a912f73a.d: crates/bench/src/bin/cot_timing.rs

/root/repo/target/debug/deps/cot_timing-d40689a9a912f73a: crates/bench/src/bin/cot_timing.rs

crates/bench/src/bin/cot_timing.rs:
