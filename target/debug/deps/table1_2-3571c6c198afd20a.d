/root/repo/target/debug/deps/table1_2-3571c6c198afd20a.d: crates/bench/src/bin/table1_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_2-3571c6c198afd20a.rmeta: crates/bench/src/bin/table1_2.rs Cargo.toml

crates/bench/src/bin/table1_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
