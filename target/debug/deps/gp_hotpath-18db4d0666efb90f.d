/root/repo/target/debug/deps/gp_hotpath-18db4d0666efb90f.d: crates/bench/src/bin/gp_hotpath.rs

/root/repo/target/debug/deps/gp_hotpath-18db4d0666efb90f: crates/bench/src/bin/gp_hotpath.rs

crates/bench/src/bin/gp_hotpath.rs:
