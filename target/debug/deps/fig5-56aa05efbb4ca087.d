/root/repo/target/debug/deps/fig5-56aa05efbb4ca087.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-56aa05efbb4ca087: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
