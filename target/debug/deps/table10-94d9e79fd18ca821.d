/root/repo/target/debug/deps/table10-94d9e79fd18ca821.d: crates/bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-94d9e79fd18ca821.rmeta: crates/bench/src/bin/table10.rs Cargo.toml

crates/bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
