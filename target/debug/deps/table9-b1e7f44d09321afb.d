/root/repo/target/debug/deps/table9-b1e7f44d09321afb.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-b1e7f44d09321afb: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
