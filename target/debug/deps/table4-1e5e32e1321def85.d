/root/repo/target/debug/deps/table4-1e5e32e1321def85.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-1e5e32e1321def85: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
