/root/repo/target/debug/deps/calibrate-066d39c753afaed7.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-066d39c753afaed7: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
