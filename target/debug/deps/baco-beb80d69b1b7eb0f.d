/root/repo/target/debug/deps/baco-beb80d69b1b7eb0f.d: crates/baco/src/lib.rs crates/baco/src/acquisition/mod.rs crates/baco/src/acquisition/prior.rs crates/baco/src/baselines/mod.rs crates/baco/src/baselines/atf.rs crates/baco/src/baselines/ytopt.rs crates/baco/src/benchmark.rs crates/baco/src/capabilities.rs crates/baco/src/constraints/mod.rs crates/baco/src/constraints/ast.rs crates/baco/src/constraints/lexer.rs crates/baco/src/constraints/parser.rs crates/baco/src/cot/mod.rs crates/baco/src/cot/tree.rs crates/baco/src/error.rs crates/baco/src/linalg/mod.rs crates/baco/src/linalg/cholesky.rs crates/baco/src/linalg/matrix.rs crates/baco/src/opt/mod.rs crates/baco/src/opt/lbfgs.rs crates/baco/src/parallel.rs crates/baco/src/search/mod.rs crates/baco/src/search/neighbors.rs crates/baco/src/space/mod.rs crates/baco/src/space/builder.rs crates/baco/src/space/config.rs crates/baco/src/space/param.rs crates/baco/src/space/perm.rs crates/baco/src/surrogate/mod.rs crates/baco/src/surrogate/cache.rs crates/baco/src/surrogate/features.rs crates/baco/src/surrogate/gp.rs crates/baco/src/surrogate/rf/mod.rs crates/baco/src/surrogate/rf/tree.rs crates/baco/src/tuner/mod.rs crates/baco/src/tuner/blackbox.rs crates/baco/src/tuner/report.rs crates/baco/src/tuner/session.rs

/root/repo/target/debug/deps/libbaco-beb80d69b1b7eb0f.rlib: crates/baco/src/lib.rs crates/baco/src/acquisition/mod.rs crates/baco/src/acquisition/prior.rs crates/baco/src/baselines/mod.rs crates/baco/src/baselines/atf.rs crates/baco/src/baselines/ytopt.rs crates/baco/src/benchmark.rs crates/baco/src/capabilities.rs crates/baco/src/constraints/mod.rs crates/baco/src/constraints/ast.rs crates/baco/src/constraints/lexer.rs crates/baco/src/constraints/parser.rs crates/baco/src/cot/mod.rs crates/baco/src/cot/tree.rs crates/baco/src/error.rs crates/baco/src/linalg/mod.rs crates/baco/src/linalg/cholesky.rs crates/baco/src/linalg/matrix.rs crates/baco/src/opt/mod.rs crates/baco/src/opt/lbfgs.rs crates/baco/src/parallel.rs crates/baco/src/search/mod.rs crates/baco/src/search/neighbors.rs crates/baco/src/space/mod.rs crates/baco/src/space/builder.rs crates/baco/src/space/config.rs crates/baco/src/space/param.rs crates/baco/src/space/perm.rs crates/baco/src/surrogate/mod.rs crates/baco/src/surrogate/cache.rs crates/baco/src/surrogate/features.rs crates/baco/src/surrogate/gp.rs crates/baco/src/surrogate/rf/mod.rs crates/baco/src/surrogate/rf/tree.rs crates/baco/src/tuner/mod.rs crates/baco/src/tuner/blackbox.rs crates/baco/src/tuner/report.rs crates/baco/src/tuner/session.rs

/root/repo/target/debug/deps/libbaco-beb80d69b1b7eb0f.rmeta: crates/baco/src/lib.rs crates/baco/src/acquisition/mod.rs crates/baco/src/acquisition/prior.rs crates/baco/src/baselines/mod.rs crates/baco/src/baselines/atf.rs crates/baco/src/baselines/ytopt.rs crates/baco/src/benchmark.rs crates/baco/src/capabilities.rs crates/baco/src/constraints/mod.rs crates/baco/src/constraints/ast.rs crates/baco/src/constraints/lexer.rs crates/baco/src/constraints/parser.rs crates/baco/src/cot/mod.rs crates/baco/src/cot/tree.rs crates/baco/src/error.rs crates/baco/src/linalg/mod.rs crates/baco/src/linalg/cholesky.rs crates/baco/src/linalg/matrix.rs crates/baco/src/opt/mod.rs crates/baco/src/opt/lbfgs.rs crates/baco/src/parallel.rs crates/baco/src/search/mod.rs crates/baco/src/search/neighbors.rs crates/baco/src/space/mod.rs crates/baco/src/space/builder.rs crates/baco/src/space/config.rs crates/baco/src/space/param.rs crates/baco/src/space/perm.rs crates/baco/src/surrogate/mod.rs crates/baco/src/surrogate/cache.rs crates/baco/src/surrogate/features.rs crates/baco/src/surrogate/gp.rs crates/baco/src/surrogate/rf/mod.rs crates/baco/src/surrogate/rf/tree.rs crates/baco/src/tuner/mod.rs crates/baco/src/tuner/blackbox.rs crates/baco/src/tuner/report.rs crates/baco/src/tuner/session.rs

crates/baco/src/lib.rs:
crates/baco/src/acquisition/mod.rs:
crates/baco/src/acquisition/prior.rs:
crates/baco/src/baselines/mod.rs:
crates/baco/src/baselines/atf.rs:
crates/baco/src/baselines/ytopt.rs:
crates/baco/src/benchmark.rs:
crates/baco/src/capabilities.rs:
crates/baco/src/constraints/mod.rs:
crates/baco/src/constraints/ast.rs:
crates/baco/src/constraints/lexer.rs:
crates/baco/src/constraints/parser.rs:
crates/baco/src/cot/mod.rs:
crates/baco/src/cot/tree.rs:
crates/baco/src/error.rs:
crates/baco/src/linalg/mod.rs:
crates/baco/src/linalg/cholesky.rs:
crates/baco/src/linalg/matrix.rs:
crates/baco/src/opt/mod.rs:
crates/baco/src/opt/lbfgs.rs:
crates/baco/src/parallel.rs:
crates/baco/src/search/mod.rs:
crates/baco/src/search/neighbors.rs:
crates/baco/src/space/mod.rs:
crates/baco/src/space/builder.rs:
crates/baco/src/space/config.rs:
crates/baco/src/space/param.rs:
crates/baco/src/space/perm.rs:
crates/baco/src/surrogate/mod.rs:
crates/baco/src/surrogate/cache.rs:
crates/baco/src/surrogate/features.rs:
crates/baco/src/surrogate/gp.rs:
crates/baco/src/surrogate/rf/mod.rs:
crates/baco/src/surrogate/rf/tree.rs:
crates/baco/src/tuner/mod.rs:
crates/baco/src/tuner/blackbox.rs:
crates/baco/src/tuner/report.rs:
crates/baco/src/tuner/session.rs:
