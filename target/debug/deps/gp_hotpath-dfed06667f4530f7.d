/root/repo/target/debug/deps/gp_hotpath-dfed06667f4530f7.d: crates/bench/src/bin/gp_hotpath.rs

/root/repo/target/debug/deps/gp_hotpath-dfed06667f4530f7: crates/bench/src/bin/gp_hotpath.rs

crates/bench/src/bin/gp_hotpath.rs:
