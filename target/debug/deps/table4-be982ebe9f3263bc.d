/root/repo/target/debug/deps/table4-be982ebe9f3263bc.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-be982ebe9f3263bc: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
