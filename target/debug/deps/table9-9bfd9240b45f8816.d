/root/repo/target/debug/deps/table9-9bfd9240b45f8816.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-9bfd9240b45f8816: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
