/root/repo/target/debug/deps/cot_timing-349006a3a870e664.d: crates/bench/src/bin/cot_timing.rs Cargo.toml

/root/repo/target/debug/deps/libcot_timing-349006a3a870e664.rmeta: crates/bench/src/bin/cot_timing.rs Cargo.toml

crates/bench/src/bin/cot_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
