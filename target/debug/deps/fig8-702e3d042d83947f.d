/root/repo/target/debug/deps/fig8-702e3d042d83947f.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-702e3d042d83947f: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
