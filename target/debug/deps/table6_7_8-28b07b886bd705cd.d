/root/repo/target/debug/deps/table6_7_8-28b07b886bd705cd.d: crates/bench/src/bin/table6_7_8.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_7_8-28b07b886bd705cd.rmeta: crates/bench/src/bin/table6_7_8.rs Cargo.toml

crates/bench/src/bin/table6_7_8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
