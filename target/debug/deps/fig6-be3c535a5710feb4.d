/root/repo/target/debug/deps/fig6-be3c535a5710feb4.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-be3c535a5710feb4: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
