/root/repo/target/debug/deps/baco_repro-8b88db1a860193b5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbaco_repro-8b88db1a860193b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
