/root/repo/target/debug/deps/table6_7_8-0676e77a5f06a0bb.d: crates/bench/src/bin/table6_7_8.rs

/root/repo/target/debug/deps/table6_7_8-0676e77a5f06a0bb: crates/bench/src/bin/table6_7_8.rs

crates/bench/src/bin/table6_7_8.rs:
