/root/repo/target/debug/deps/baco_bench-ad056ee8ab7f218e.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

/root/repo/target/debug/deps/libbaco_bench-ad056ee8ab7f218e.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

/root/repo/target/debug/deps/libbaco_bench-ad056ee8ab7f218e.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/agg.rs:
crates/bench/src/cli.rs:
crates/bench/src/runner.rs:
crates/bench/src/stats.rs:
crates/bench/src/store.rs:
