/root/repo/target/debug/deps/fpga_sim-d4cf3a268a478d1b.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

/root/repo/target/debug/deps/fpga_sim-d4cf3a268a478d1b: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/benchmarks.rs:
crates/fpga-sim/src/device.rs:
