/root/repo/target/debug/deps/baco_repro-a34e221f5ea32cf3.d: src/lib.rs

/root/repo/target/debug/deps/baco_repro-a34e221f5ea32cf3: src/lib.rs

src/lib.rs:
