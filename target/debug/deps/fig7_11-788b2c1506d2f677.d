/root/repo/target/debug/deps/fig7_11-788b2c1506d2f677.d: crates/bench/src/bin/fig7_11.rs

/root/repo/target/debug/deps/fig7_11-788b2c1506d2f677: crates/bench/src/bin/fig7_11.rs

crates/bench/src/bin/fig7_11.rs:
