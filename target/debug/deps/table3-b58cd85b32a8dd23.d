/root/repo/target/debug/deps/table3-b58cd85b32a8dd23.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b58cd85b32a8dd23: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
