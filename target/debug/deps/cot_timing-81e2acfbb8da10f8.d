/root/repo/target/debug/deps/cot_timing-81e2acfbb8da10f8.d: crates/bench/src/bin/cot_timing.rs

/root/repo/target/debug/deps/cot_timing-81e2acfbb8da10f8: crates/bench/src/bin/cot_timing.rs

crates/bench/src/bin/cot_timing.rs:
