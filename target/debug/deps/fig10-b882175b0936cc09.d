/root/repo/target/debug/deps/fig10-b882175b0936cc09.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-b882175b0936cc09: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
