/root/repo/target/debug/deps/baco-366b71f86e43f67c.d: crates/baco/src/lib.rs crates/baco/src/acquisition/mod.rs crates/baco/src/acquisition/prior.rs crates/baco/src/baselines/mod.rs crates/baco/src/baselines/atf.rs crates/baco/src/baselines/ytopt.rs crates/baco/src/benchmark.rs crates/baco/src/capabilities.rs crates/baco/src/constraints/mod.rs crates/baco/src/constraints/ast.rs crates/baco/src/constraints/lexer.rs crates/baco/src/constraints/parser.rs crates/baco/src/cot/mod.rs crates/baco/src/cot/tree.rs crates/baco/src/error.rs crates/baco/src/linalg/mod.rs crates/baco/src/linalg/cholesky.rs crates/baco/src/linalg/matrix.rs crates/baco/src/opt/mod.rs crates/baco/src/opt/lbfgs.rs crates/baco/src/parallel.rs crates/baco/src/search/mod.rs crates/baco/src/search/neighbors.rs crates/baco/src/space/mod.rs crates/baco/src/space/builder.rs crates/baco/src/space/config.rs crates/baco/src/space/param.rs crates/baco/src/space/perm.rs crates/baco/src/surrogate/mod.rs crates/baco/src/surrogate/cache.rs crates/baco/src/surrogate/features.rs crates/baco/src/surrogate/gp.rs crates/baco/src/surrogate/rf/mod.rs crates/baco/src/surrogate/rf/tree.rs crates/baco/src/tuner/mod.rs crates/baco/src/tuner/blackbox.rs crates/baco/src/tuner/report.rs crates/baco/src/tuner/session.rs Cargo.toml

/root/repo/target/debug/deps/libbaco-366b71f86e43f67c.rmeta: crates/baco/src/lib.rs crates/baco/src/acquisition/mod.rs crates/baco/src/acquisition/prior.rs crates/baco/src/baselines/mod.rs crates/baco/src/baselines/atf.rs crates/baco/src/baselines/ytopt.rs crates/baco/src/benchmark.rs crates/baco/src/capabilities.rs crates/baco/src/constraints/mod.rs crates/baco/src/constraints/ast.rs crates/baco/src/constraints/lexer.rs crates/baco/src/constraints/parser.rs crates/baco/src/cot/mod.rs crates/baco/src/cot/tree.rs crates/baco/src/error.rs crates/baco/src/linalg/mod.rs crates/baco/src/linalg/cholesky.rs crates/baco/src/linalg/matrix.rs crates/baco/src/opt/mod.rs crates/baco/src/opt/lbfgs.rs crates/baco/src/parallel.rs crates/baco/src/search/mod.rs crates/baco/src/search/neighbors.rs crates/baco/src/space/mod.rs crates/baco/src/space/builder.rs crates/baco/src/space/config.rs crates/baco/src/space/param.rs crates/baco/src/space/perm.rs crates/baco/src/surrogate/mod.rs crates/baco/src/surrogate/cache.rs crates/baco/src/surrogate/features.rs crates/baco/src/surrogate/gp.rs crates/baco/src/surrogate/rf/mod.rs crates/baco/src/surrogate/rf/tree.rs crates/baco/src/tuner/mod.rs crates/baco/src/tuner/blackbox.rs crates/baco/src/tuner/report.rs crates/baco/src/tuner/session.rs Cargo.toml

crates/baco/src/lib.rs:
crates/baco/src/acquisition/mod.rs:
crates/baco/src/acquisition/prior.rs:
crates/baco/src/baselines/mod.rs:
crates/baco/src/baselines/atf.rs:
crates/baco/src/baselines/ytopt.rs:
crates/baco/src/benchmark.rs:
crates/baco/src/capabilities.rs:
crates/baco/src/constraints/mod.rs:
crates/baco/src/constraints/ast.rs:
crates/baco/src/constraints/lexer.rs:
crates/baco/src/constraints/parser.rs:
crates/baco/src/cot/mod.rs:
crates/baco/src/cot/tree.rs:
crates/baco/src/error.rs:
crates/baco/src/linalg/mod.rs:
crates/baco/src/linalg/cholesky.rs:
crates/baco/src/linalg/matrix.rs:
crates/baco/src/opt/mod.rs:
crates/baco/src/opt/lbfgs.rs:
crates/baco/src/parallel.rs:
crates/baco/src/search/mod.rs:
crates/baco/src/search/neighbors.rs:
crates/baco/src/space/mod.rs:
crates/baco/src/space/builder.rs:
crates/baco/src/space/config.rs:
crates/baco/src/space/param.rs:
crates/baco/src/space/perm.rs:
crates/baco/src/surrogate/mod.rs:
crates/baco/src/surrogate/cache.rs:
crates/baco/src/surrogate/features.rs:
crates/baco/src/surrogate/gp.rs:
crates/baco/src/surrogate/rf/mod.rs:
crates/baco/src/surrogate/rf/tree.rs:
crates/baco/src/tuner/mod.rs:
crates/baco/src/tuner/blackbox.rs:
crates/baco/src/tuner/report.rs:
crates/baco/src/tuner/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
