/root/repo/target/debug/deps/table5-004ee6b87de9ba01.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-004ee6b87de9ba01: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
