/root/repo/target/debug/deps/table10-a414cb00784a9004.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-a414cb00784a9004: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
