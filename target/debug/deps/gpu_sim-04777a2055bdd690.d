/root/repo/target/debug/deps/gpu_sim-04777a2055bdd690.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

/root/repo/target/debug/deps/gpu_sim-04777a2055bdd690: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/benchmarks.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernels/mod.rs:
crates/gpu-sim/src/kernels/asum.rs:
crates/gpu-sim/src/kernels/harris.rs:
crates/gpu-sim/src/kernels/kmeans.rs:
crates/gpu-sim/src/kernels/mm_cpu.rs:
crates/gpu-sim/src/kernels/mm_gpu.rs:
crates/gpu-sim/src/kernels/scal.rs:
crates/gpu-sim/src/kernels/stencil.rs:
