/root/repo/target/debug/deps/table6_7_8-11f014923422d4ff.d: crates/bench/src/bin/table6_7_8.rs

/root/repo/target/debug/deps/table6_7_8-11f014923422d4ff: crates/bench/src/bin/table6_7_8.rs

crates/bench/src/bin/table6_7_8.rs:
