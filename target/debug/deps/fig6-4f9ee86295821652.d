/root/repo/target/debug/deps/fig6-4f9ee86295821652.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4f9ee86295821652: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
