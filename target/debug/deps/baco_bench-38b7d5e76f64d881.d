/root/repo/target/debug/deps/baco_bench-38b7d5e76f64d881.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

/root/repo/target/debug/deps/baco_bench-38b7d5e76f64d881: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/agg.rs:
crates/bench/src/cli.rs:
crates/bench/src/runner.rs:
crates/bench/src/stats.rs:
crates/bench/src/store.rs:
