/root/repo/target/debug/deps/fig9-b7cac5ad91d528cd.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b7cac5ad91d528cd: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
