/root/repo/target/debug/deps/fig9-140732cf9d9bc372.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-140732cf9d9bc372: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
