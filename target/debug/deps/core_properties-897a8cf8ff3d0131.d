/root/repo/target/debug/deps/core_properties-897a8cf8ff3d0131.d: crates/baco/tests/core_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcore_properties-897a8cf8ff3d0131.rmeta: crates/baco/tests/core_properties.rs Cargo.toml

crates/baco/tests/core_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
