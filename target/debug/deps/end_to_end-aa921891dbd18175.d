/root/repo/target/debug/deps/end_to_end-aa921891dbd18175.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-aa921891dbd18175: tests/end_to_end.rs

tests/end_to_end.rs:
