/root/repo/target/debug/deps/criterion-a2cac97e66d66915.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-a2cac97e66d66915.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
