/root/repo/target/debug/deps/core_properties-0d89b55f61710470.d: crates/baco/tests/core_properties.rs

/root/repo/target/debug/deps/core_properties-0d89b55f61710470: crates/baco/tests/core_properties.rs

crates/baco/tests/core_properties.rs:
