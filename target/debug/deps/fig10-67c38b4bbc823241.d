/root/repo/target/debug/deps/fig10-67c38b4bbc823241.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-67c38b4bbc823241: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
