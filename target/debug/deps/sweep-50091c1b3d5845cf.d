/root/repo/target/debug/deps/sweep-50091c1b3d5845cf.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-50091c1b3d5845cf: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
