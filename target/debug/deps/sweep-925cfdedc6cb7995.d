/root/repo/target/debug/deps/sweep-925cfdedc6cb7995.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-925cfdedc6cb7995: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
