/root/repo/target/debug/deps/taco_sim-f37f74919caa200a.d: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/libtaco_sim-f37f74919caa200a.rmeta: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs Cargo.toml

crates/taco-sim/src/lib.rs:
crates/taco-sim/src/benchmarks.rs:
crates/taco-sim/src/generate.rs:
crates/taco-sim/src/kernels/mod.rs:
crates/taco-sim/src/kernels/mttkrp.rs:
crates/taco-sim/src/kernels/sddmm.rs:
crates/taco-sim/src/kernels/spmm.rs:
crates/taco-sim/src/kernels/spmv.rs:
crates/taco-sim/src/kernels/ttv.rs:
crates/taco-sim/src/parallel.rs:
crates/taco-sim/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
