/root/repo/target/debug/deps/sweep-2bb6565f6d18c728.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-2bb6565f6d18c728.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
