/root/repo/target/debug/deps/baco_bench-6b5ca4e835a71b02.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libbaco_bench-6b5ca4e835a71b02.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/agg.rs:
crates/bench/src/cli.rs:
crates/bench/src/runner.rs:
crates/bench/src/stats.rs:
crates/bench/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
