/root/repo/target/debug/deps/fig8-9d1e285b35e339d7.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-9d1e285b35e339d7: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
