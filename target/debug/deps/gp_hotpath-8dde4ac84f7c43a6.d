/root/repo/target/debug/deps/gp_hotpath-8dde4ac84f7c43a6.d: crates/bench/src/bin/gp_hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libgp_hotpath-8dde4ac84f7c43a6.rmeta: crates/bench/src/bin/gp_hotpath.rs Cargo.toml

crates/bench/src/bin/gp_hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
