/root/repo/target/debug/deps/table3-bdb14231b38f732f.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-bdb14231b38f732f: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
