/root/repo/target/debug/deps/table10-392734a6f4931b8f.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-392734a6f4931b8f: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
