/root/repo/target/debug/deps/taco_sim-9d8e48bc39ff23d8.d: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

/root/repo/target/debug/deps/libtaco_sim-9d8e48bc39ff23d8.rlib: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

/root/repo/target/debug/deps/libtaco_sim-9d8e48bc39ff23d8.rmeta: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

crates/taco-sim/src/lib.rs:
crates/taco-sim/src/benchmarks.rs:
crates/taco-sim/src/generate.rs:
crates/taco-sim/src/kernels/mod.rs:
crates/taco-sim/src/kernels/mttkrp.rs:
crates/taco-sim/src/kernels/sddmm.rs:
crates/taco-sim/src/kernels/spmm.rs:
crates/taco-sim/src/kernels/spmv.rs:
crates/taco-sim/src/kernels/ttv.rs:
crates/taco-sim/src/parallel.rs:
crates/taco-sim/src/sparse.rs:
