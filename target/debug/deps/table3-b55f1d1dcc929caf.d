/root/repo/target/debug/deps/table3-b55f1d1dcc929caf.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-b55f1d1dcc929caf.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
