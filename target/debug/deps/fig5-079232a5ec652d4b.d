/root/repo/target/debug/deps/fig5-079232a5ec652d4b.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-079232a5ec652d4b: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
