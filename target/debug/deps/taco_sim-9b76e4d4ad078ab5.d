/root/repo/target/debug/deps/taco_sim-9b76e4d4ad078ab5.d: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

/root/repo/target/debug/deps/taco_sim-9b76e4d4ad078ab5: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

crates/taco-sim/src/lib.rs:
crates/taco-sim/src/benchmarks.rs:
crates/taco-sim/src/generate.rs:
crates/taco-sim/src/kernels/mod.rs:
crates/taco-sim/src/kernels/mttkrp.rs:
crates/taco-sim/src/kernels/sddmm.rs:
crates/taco-sim/src/kernels/spmm.rs:
crates/taco-sim/src/kernels/spmv.rs:
crates/taco-sim/src/kernels/ttv.rs:
crates/taco-sim/src/parallel.rs:
crates/taco-sim/src/sparse.rs:
