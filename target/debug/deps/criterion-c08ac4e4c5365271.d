/root/repo/target/debug/deps/criterion-c08ac4e4c5365271.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-c08ac4e4c5365271: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
