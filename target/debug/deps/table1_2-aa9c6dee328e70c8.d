/root/repo/target/debug/deps/table1_2-aa9c6dee328e70c8.d: crates/bench/src/bin/table1_2.rs

/root/repo/target/debug/deps/table1_2-aa9c6dee328e70c8: crates/bench/src/bin/table1_2.rs

crates/bench/src/bin/table1_2.rs:
