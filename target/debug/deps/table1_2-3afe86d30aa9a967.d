/root/repo/target/debug/deps/table1_2-3afe86d30aa9a967.d: crates/bench/src/bin/table1_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_2-3afe86d30aa9a967.rmeta: crates/bench/src/bin/table1_2.rs Cargo.toml

crates/bench/src/bin/table1_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
