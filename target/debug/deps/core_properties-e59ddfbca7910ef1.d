/root/repo/target/debug/deps/core_properties-e59ddfbca7910ef1.d: crates/baco/tests/core_properties.rs

/root/repo/target/debug/deps/core_properties-e59ddfbca7910ef1: crates/baco/tests/core_properties.rs

crates/baco/tests/core_properties.rs:
