/root/repo/target/debug/deps/fig7_11-f78ab4f5e3a7d455.d: crates/bench/src/bin/fig7_11.rs

/root/repo/target/debug/deps/fig7_11-f78ab4f5e3a7d455: crates/bench/src/bin/fig7_11.rs

crates/bench/src/bin/fig7_11.rs:
