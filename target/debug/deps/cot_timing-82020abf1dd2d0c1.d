/root/repo/target/debug/deps/cot_timing-82020abf1dd2d0c1.d: crates/bench/src/bin/cot_timing.rs Cargo.toml

/root/repo/target/debug/deps/libcot_timing-82020abf1dd2d0c1.rmeta: crates/bench/src/bin/cot_timing.rs Cargo.toml

crates/bench/src/bin/cot_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
