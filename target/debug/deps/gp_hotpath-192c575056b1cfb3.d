/root/repo/target/debug/deps/gp_hotpath-192c575056b1cfb3.d: crates/bench/src/bin/gp_hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libgp_hotpath-192c575056b1cfb3.rmeta: crates/bench/src/bin/gp_hotpath.rs Cargo.toml

crates/bench/src/bin/gp_hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
