/root/repo/target/debug/deps/fpga_sim-89b5e951b6e00308.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

/root/repo/target/debug/deps/libfpga_sim-89b5e951b6e00308.rlib: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

/root/repo/target/debug/deps/libfpga_sim-89b5e951b6e00308.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/benchmarks.rs:
crates/fpga-sim/src/device.rs:
