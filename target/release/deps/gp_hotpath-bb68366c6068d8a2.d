/root/repo/target/release/deps/gp_hotpath-bb68366c6068d8a2.d: crates/bench/src/bin/gp_hotpath.rs

/root/repo/target/release/deps/gp_hotpath-bb68366c6068d8a2: crates/bench/src/bin/gp_hotpath.rs

crates/bench/src/bin/gp_hotpath.rs:
