/root/repo/target/release/deps/table6_7_8-1ff59c4aecd78429.d: crates/bench/src/bin/table6_7_8.rs

/root/repo/target/release/deps/table6_7_8-1ff59c4aecd78429: crates/bench/src/bin/table6_7_8.rs

crates/bench/src/bin/table6_7_8.rs:
