/root/repo/target/release/deps/table3-f4078d3a5c96c2c1.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-f4078d3a5c96c2c1: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
