/root/repo/target/release/deps/rand-cabea4b5b3eeae80.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-cabea4b5b3eeae80.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-cabea4b5b3eeae80.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
