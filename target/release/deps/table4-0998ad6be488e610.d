/root/repo/target/release/deps/table4-0998ad6be488e610.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-0998ad6be488e610: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
