/root/repo/target/release/deps/calibrate-dcbccf56c4dd23ea.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-dcbccf56c4dd23ea: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
