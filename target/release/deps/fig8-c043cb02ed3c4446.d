/root/repo/target/release/deps/fig8-c043cb02ed3c4446.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-c043cb02ed3c4446: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
