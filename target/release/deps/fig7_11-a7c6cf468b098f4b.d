/root/repo/target/release/deps/fig7_11-a7c6cf468b098f4b.d: crates/bench/src/bin/fig7_11.rs

/root/repo/target/release/deps/fig7_11-a7c6cf468b098f4b: crates/bench/src/bin/fig7_11.rs

crates/bench/src/bin/fig7_11.rs:
