/root/repo/target/release/deps/criterion-70e26ed91583951b.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-70e26ed91583951b.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-70e26ed91583951b.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
