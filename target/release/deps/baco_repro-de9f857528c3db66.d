/root/repo/target/release/deps/baco_repro-de9f857528c3db66.d: src/lib.rs

/root/repo/target/release/deps/libbaco_repro-de9f857528c3db66.rlib: src/lib.rs

/root/repo/target/release/deps/libbaco_repro-de9f857528c3db66.rmeta: src/lib.rs

src/lib.rs:
