/root/repo/target/release/deps/fpga_sim-6ffa91ed786f7fc1.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

/root/repo/target/release/deps/libfpga_sim-6ffa91ed786f7fc1.rlib: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

/root/repo/target/release/deps/libfpga_sim-6ffa91ed786f7fc1.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/benchmarks.rs crates/fpga-sim/src/device.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/benchmarks.rs:
crates/fpga-sim/src/device.rs:
