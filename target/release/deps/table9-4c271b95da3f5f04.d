/root/repo/target/release/deps/table9-4c271b95da3f5f04.d: crates/bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-4c271b95da3f5f04: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
