/root/repo/target/release/deps/gpu_sim-87b5ecf8d8ef448b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

/root/repo/target/release/deps/libgpu_sim-87b5ecf8d8ef448b.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

/root/repo/target/release/deps/libgpu_sim-87b5ecf8d8ef448b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/benchmarks.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernels/mod.rs crates/gpu-sim/src/kernels/asum.rs crates/gpu-sim/src/kernels/harris.rs crates/gpu-sim/src/kernels/kmeans.rs crates/gpu-sim/src/kernels/mm_cpu.rs crates/gpu-sim/src/kernels/mm_gpu.rs crates/gpu-sim/src/kernels/scal.rs crates/gpu-sim/src/kernels/stencil.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/benchmarks.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernels/mod.rs:
crates/gpu-sim/src/kernels/asum.rs:
crates/gpu-sim/src/kernels/harris.rs:
crates/gpu-sim/src/kernels/kmeans.rs:
crates/gpu-sim/src/kernels/mm_cpu.rs:
crates/gpu-sim/src/kernels/mm_gpu.rs:
crates/gpu-sim/src/kernels/scal.rs:
crates/gpu-sim/src/kernels/stencil.rs:
