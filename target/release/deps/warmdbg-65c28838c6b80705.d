/root/repo/target/release/deps/warmdbg-65c28838c6b80705.d: crates/bench/src/bin/warmdbg.rs

/root/repo/target/release/deps/warmdbg-65c28838c6b80705: crates/bench/src/bin/warmdbg.rs

crates/bench/src/bin/warmdbg.rs:
