/root/repo/target/release/deps/cot_timing-04ddd694029c3a60.d: crates/bench/src/bin/cot_timing.rs

/root/repo/target/release/deps/cot_timing-04ddd694029c3a60: crates/bench/src/bin/cot_timing.rs

crates/bench/src/bin/cot_timing.rs:
