/root/repo/target/release/deps/fig6-c460432bea9b66dd.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-c460432bea9b66dd: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
