/root/repo/target/release/deps/fig5-3a1a75df3d6b533b.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-3a1a75df3d6b533b: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
