/root/repo/target/release/deps/table10-279b96dbcbba3b69.d: crates/bench/src/bin/table10.rs

/root/repo/target/release/deps/table10-279b96dbcbba3b69: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
