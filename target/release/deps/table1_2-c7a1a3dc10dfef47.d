/root/repo/target/release/deps/table1_2-c7a1a3dc10dfef47.d: crates/bench/src/bin/table1_2.rs

/root/repo/target/release/deps/table1_2-c7a1a3dc10dfef47: crates/bench/src/bin/table1_2.rs

crates/bench/src/bin/table1_2.rs:
