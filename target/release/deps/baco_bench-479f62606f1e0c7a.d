/root/repo/target/release/deps/baco_bench-479f62606f1e0c7a.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

/root/repo/target/release/deps/libbaco_bench-479f62606f1e0c7a.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

/root/repo/target/release/deps/libbaco_bench-479f62606f1e0c7a.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/agg.rs crates/bench/src/cli.rs crates/bench/src/runner.rs crates/bench/src/stats.rs crates/bench/src/store.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/agg.rs:
crates/bench/src/cli.rs:
crates/bench/src/runner.rs:
crates/bench/src/stats.rs:
crates/bench/src/store.rs:
