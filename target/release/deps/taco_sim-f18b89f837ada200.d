/root/repo/target/release/deps/taco_sim-f18b89f837ada200.d: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

/root/repo/target/release/deps/libtaco_sim-f18b89f837ada200.rlib: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

/root/repo/target/release/deps/libtaco_sim-f18b89f837ada200.rmeta: crates/taco-sim/src/lib.rs crates/taco-sim/src/benchmarks.rs crates/taco-sim/src/generate.rs crates/taco-sim/src/kernels/mod.rs crates/taco-sim/src/kernels/mttkrp.rs crates/taco-sim/src/kernels/sddmm.rs crates/taco-sim/src/kernels/spmm.rs crates/taco-sim/src/kernels/spmv.rs crates/taco-sim/src/kernels/ttv.rs crates/taco-sim/src/parallel.rs crates/taco-sim/src/sparse.rs

crates/taco-sim/src/lib.rs:
crates/taco-sim/src/benchmarks.rs:
crates/taco-sim/src/generate.rs:
crates/taco-sim/src/kernels/mod.rs:
crates/taco-sim/src/kernels/mttkrp.rs:
crates/taco-sim/src/kernels/sddmm.rs:
crates/taco-sim/src/kernels/spmm.rs:
crates/taco-sim/src/kernels/spmv.rs:
crates/taco-sim/src/kernels/ttv.rs:
crates/taco-sim/src/parallel.rs:
crates/taco-sim/src/sparse.rs:
