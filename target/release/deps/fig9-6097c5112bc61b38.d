/root/repo/target/release/deps/fig9-6097c5112bc61b38.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-6097c5112bc61b38: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
