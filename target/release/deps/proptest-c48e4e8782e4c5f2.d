/root/repo/target/release/deps/proptest-c48e4e8782e4c5f2.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c48e4e8782e4c5f2.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c48e4e8782e4c5f2.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
