/root/repo/target/release/deps/fig10-f9071bee9923e35c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-f9071bee9923e35c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
