/root/repo/target/release/deps/table5-b9b021e0212b039c.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-b9b021e0212b039c: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
