/root/repo/target/release/deps/sweep-3c113dbe69f5accc.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-3c113dbe69f5accc: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
