/root/repo/target/release/examples/quickstart-d7ec50a95e777fd8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d7ec50a95e777fd8: examples/quickstart.rs

examples/quickstart.rs:
