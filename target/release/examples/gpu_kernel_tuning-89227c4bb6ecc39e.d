/root/repo/target/release/examples/gpu_kernel_tuning-89227c4bb6ecc39e.d: examples/gpu_kernel_tuning.rs

/root/repo/target/release/examples/gpu_kernel_tuning-89227c4bb6ecc39e: examples/gpu_kernel_tuning.rs

examples/gpu_kernel_tuning.rs:
