//! Umbrella crate for the BaCO reproduction workspace.
//!
//! Re-exports the core tuner ([`baco`]) and the three compiler substrates so
//! that examples and integration tests can use a single dependency. See the
//! individual crates for documentation:
//!
//! * [`baco`] — the Bayesian Compiler Optimization framework itself.
//! * [`taco_sim`] — miniature sparse tensor algebra compiler/runtime.
//! * [`gpu_sim`] — analytic GPU performance model (RISE & ELEVATE benchmarks).
//! * [`fpga_sim`] — FPGA design-space estimator (HPVM2FPGA benchmarks).

pub use baco;
pub use fpga_sim;
pub use gpu_sim;
pub use taco_sim;
