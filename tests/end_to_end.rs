//! End-to-end integration: the full BaCO pipeline against all three compiler
//! substrates, at test scale.

use baco::baselines::{Tuner, UniformSampler};
use baco::prelude::*;
use taco_sim::benchmarks::TacoScale;

/// BaCO must beat uniform sampling (same budget, averaged over seeds) on the
/// paper's hardest space.
#[test]
fn baco_beats_uniform_on_mm_gpu() {
    let bench = gpu_sim::benchmarks::mm_gpu();
    let budget = 60;
    let mut baco_total = 0.0;
    let mut uni_total = 0.0;
    for seed in 0..3 {
        let r = Baco::builder(bench.space.clone())
            .budget(budget)
            .doe_samples(10)
            .seed(seed)
            .build()
            .unwrap()
            .run(&bench.blackbox)
            .unwrap();
        baco_total += r.best_value().expect("feasible best");
        let mut u = UniformSampler::new(&bench.space, budget, seed).unwrap();
        uni_total += u.run(&bench.blackbox).unwrap().best_value().expect("feasible best");
    }
    assert!(
        baco_total < uni_total,
        "BaCO {baco_total:.3} should beat uniform {uni_total:.3}"
    );
}

/// Tuning a real (measured) sparse kernel end to end.
#[test]
fn baco_tunes_real_spmm_execution() {
    let bench = taco_sim::benchmarks::spmm_benchmark("scircuit", TacoScale::Test);
    let default = bench.default_value().unwrap();
    let r = Baco::builder(bench.space.clone())
        .budget(30)
        .doe_samples(8)
        .seed(5)
        .build()
        .unwrap()
        .run(&bench.blackbox)
        .unwrap();
    let best = r.best_value().unwrap();
    assert!(best < default, "tuned {best} vs default {default}");
    // Every proposed configuration satisfied the known constraints.
    for t in r.trials() {
        assert!(bench.space.satisfies_known(&t.config).unwrap(), "{}", t.config);
    }
}

/// The FPGA substrate: hidden-constraint failures are survived and learned.
#[test]
fn baco_explores_fpga_space_with_failures() {
    let bench = fpga_sim::benchmarks::preeuler();
    let r = Baco::builder(bench.space.clone())
        .budget(40)
        .doe_samples(10)
        .seed(9)
        .build()
        .unwrap()
        .run(&bench.blackbox)
        .unwrap();
    assert_eq!(r.len(), 40);
    assert!(r.best_value().is_some(), "must find fitting designs");
    assert!(r.feasible_fraction() > 0.3);
}

/// Full determinism: same seed ⇒ same proposals, across substrates with
/// deterministic black boxes.
#[test]
fn runs_are_deterministic_per_seed() {
    let bench = fpga_sim::benchmarks::bfs();
    let run = |seed| {
        Baco::builder(bench.space.clone())
            .budget(15)
            .doe_samples(5)
            .seed(seed)
            .build()
            .unwrap()
            .run(&bench.blackbox)
            .unwrap()
            .trials()
            .iter()
            .map(|t| t.config.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

/// The 25-benchmark inventory exposes consistent metadata.
#[test]
fn benchmark_inventory_is_consistent() {
    let mut names = std::collections::HashSet::new();
    for b in taco_sim::benchmarks::taco_benchmarks(TacoScale::Test)
        .into_iter()
        .chain(gpu_sim::benchmarks::rise_benchmarks())
        .chain(fpga_sim::benchmarks::hpvm_benchmarks())
    {
        assert!(names.insert(b.name.clone()), "duplicate {}", b.name);
        assert!(b.budget >= 20);
        assert!(b.space.len() >= 4);
        assert!(b.space.satisfies_known(&b.default_config).unwrap(), "{}", b.name);
        if let Some(e) = &b.expert_config {
            assert!(b.space.satisfies_known(e).unwrap(), "{}", b.name);
        }
        // Constraint metadata matches reality.
        let has_known = !b.space.known_constraints().is_empty();
        assert_eq!(
            b.constraint_kinds().contains('K'),
            has_known,
            "{}: kinds {} vs {}",
            b.name,
            b.constraint_kinds(),
            has_known
        );
    }
    assert_eq!(names.len(), 25);
}
