//! Property-based integration tests: invariants that must hold for random
//! spaces, schedules and data, spanning the core library and the substrates.

use baco::cot::ChainOfTrees;
use baco::space::{perm, ParamValue, SearchSpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lehmer ranking is a bijection for every permutation length we allow.
    #[test]
    fn perm_rank_unrank_bijection(m in 1usize..8, r in 0u64..5040) {
        let r = r % perm::factorial(m);
        let p = perm::unrank(r, m);
        prop_assert!(perm::is_permutation(&p));
        prop_assert_eq!(perm::rank(&p), r);
    }

    /// Permutation semimetrics: symmetry, identity, normalized range.
    #[test]
    fn perm_semimetric_axioms(m in 2usize..7, ra in 0u64..720, rb in 0u64..720) {
        let a = perm::unrank(ra % perm::factorial(m), m);
        let b = perm::unrank(rb % perm::factorial(m), m);
        for metric in [perm::PermMetric::Spearman, perm::PermMetric::Kendall,
                       perm::PermMetric::Hamming, perm::PermMetric::Naive] {
            let dab = perm::distance(metric, &a, &b);
            let dba = perm::distance(metric, &b, &a);
            prop_assert!((dab - dba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&dab));
            prop_assert_eq!(perm::distance(metric, &a, &a), 0.0);
            if a != b {
                prop_assert!(dab > 0.0);
            }
        }
    }

    /// CoT enumeration equals brute-force constraint filtering on random
    /// two-parameter spaces with a random divisibility/ordering constraint.
    #[test]
    fn cot_equals_brute_force(
        hi_a in 1i64..12,
        hi_b in 1i64..12,
        kind in 0u8..3,
    ) {
        let constraint = match kind {
            0 => "a >= b",
            1 => "a % (b + 1) == 0",
            _ => "a + b <= 10",
        };
        let space = SearchSpace::builder()
            .integer("a", 0, hi_a)
            .integer("b", 0, hi_b)
            .known_constraint(constraint)
            .build()
            .unwrap();
        let brute: Vec<_> = (0..=hi_a)
            .flat_map(|a| (0..=hi_b).map(move |b| (a, b)))
            .filter(|(a, b)| match kind {
                0 => a >= b,
                1 => a % (b + 1) == 0,
                _ => a + b <= 10,
            })
            .collect();
        match ChainOfTrees::build(&space) {
            Ok(cot) => {
                prop_assert_eq!(cot.feasible_size() as usize, brute.len());
                for (a, b) in brute {
                    let cfg = space
                        .configuration(&[("a", ParamValue::Int(a)), ("b", ParamValue::Int(b))])
                        .unwrap();
                    prop_assert!(cot.contains(&cfg));
                }
            }
            Err(baco::Error::EmptyFeasibleSet) => prop_assert!(brute.is_empty()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// CoT sampling always returns configurations satisfying the known
    /// constraints, for both the unbiased and biased samplers.
    #[test]
    fn cot_samples_are_feasible(seed in 0u64..500) {
        let space = SearchSpace::builder()
            .ordinal_log("tile", vec![1.0, 2.0, 4.0, 8.0, 16.0])
            .integer("unroll", 1, 8)
            .permutation("ord", 3)
            .known_constraint("tile % unroll == 0")
            .known_constraint("pos(ord, 0) < pos(ord, 2)")
            .build()
            .unwrap();
        let cot = ChainOfTrees::build(&space).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = cot.sample_uniform(&mut rng);
        let b = cot.sample_biased(&mut rng);
        prop_assert!(space.satisfies_known(&u).unwrap());
        prop_assert!(space.satisfies_known(&b).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scheduled sparse kernels compute exactly what the reference computes,
    /// whatever the (feasible) schedule.
    #[test]
    fn scheduled_spmm_matches_reference(seed in 0u64..1000) {
        use taco_sim::generate::{matrix, spec};
        use taco_sim::kernels::{spmm, SpmmSchedule};
        use taco_sim::sparse::DenseMatrix;
        use rand::SeedableRng;

        let b = matrix(&spec("ACTIVSg10K"), 0.002);
        let c = DenseMatrix::random(b.ncols, 16, 1);
        let space = taco_sim::benchmarks::spmm_space();
        let cot = ChainOfTrees::build(&space).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = cot.sample_uniform(&mut rng);
        let sched = SpmmSchedule::from_config(&cfg);
        let (got, t) = spmm(&b, &c, &sched);
        prop_assert!(t > 0.0 && t.is_finite());
        let want = taco_sim::kernels::spmm::reference(&b, &c);
        for (x, y) in got.data.iter().zip(&want.data) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }

    /// GPU kernel models never return non-finite or non-positive times for
    /// feasible configurations, across the whole feasible set.
    #[test]
    fn gpu_models_return_sane_times(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for bench in gpu_sim::benchmarks::rise_benchmarks() {
            let cot = ChainOfTrees::build(&bench.space).unwrap();
            let cfg = cot.sample_uniform(&mut rng);
            let eval = bench.blackbox.evaluate(&cfg);
            if let Some(v) = eval.value() {
                prop_assert!(v.is_finite() && v > 0.0, "{}: {v}", bench.name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transfer corpus's structural space fingerprint is invariant
    /// under parameter declaration order: the same parameters and
    /// constraints, however listed, must land on the same donor shelf.
    #[test]
    fn space_fingerprint_is_declaration_order_invariant(
        n in 2usize..6,
        rot in 1usize..5,
        lo in -5i64..0,
        hi in 1i64..20,
        kinds in 0u64..243, // base-3 digit per parameter picks its kind
        constrained in 0u8..2,
    ) {
        let build = |order: &[usize]| {
            let mut b = SearchSpace::builder();
            for &i in order {
                let name = format!("p{i}");
                b = match (kinds / 3u64.pow(i as u32)) % 3 {
                    0 => b.integer(&name, lo, hi),
                    1 => b.real(&name, 0.0, 1.0 + i as f64),
                    _ => b.categorical(&name, vec!["a", "b", "c"]),
                };
            }
            // p999 exists in every ordering, so the constraint is well-formed
            // regardless of which kinds the drawn digits picked.
            b = b.integer("p999", 0, 9);
            if constrained == 1 {
                b = b.known_constraint("p999 >= 1");
            }
            b.build().unwrap()
        };
        let fwd: Vec<usize> = (0..n).collect();
        let mut rotated = fwd.clone();
        rotated.rotate_left(rot % n);
        prop_assert_eq!(
            baco::journal::corpus::fingerprint_space(&build(&fwd)),
            baco::journal::corpus::fingerprint_space(&build(&rotated))
        );
    }

    /// …but any structural change — a widened domain, a renamed parameter,
    /// an added constraint, a different parameter kind — moves the
    /// fingerprint, so sessions from a different space never pool.
    #[test]
    fn space_fingerprint_sees_structural_changes(
        lo in 0i64..3,
        hi in 4i64..20,
        which in 0u8..4,
    ) {
        let base = SearchSpace::builder()
            .integer("x", lo, hi)
            .real("r", 0.0, 1.0)
            .build()
            .unwrap();
        let changed = match which {
            0 => SearchSpace::builder().integer("x", lo, hi + 1).real("r", 0.0, 1.0),
            1 => SearchSpace::builder().integer("y", lo, hi).real("r", 0.0, 1.0),
            2 => SearchSpace::builder()
                .integer("x", lo, hi)
                .real("r", 0.0, 1.0)
                .known_constraint("x >= 1"),
            _ => SearchSpace::builder().integer_log("x", lo.max(1), hi).real("r", 0.0, 1.0),
        }
        .build()
        .unwrap();
        prop_assert_ne!(
            baco::journal::corpus::fingerprint_space(&base),
            baco::journal::corpus::fingerprint_space(&changed)
        );
    }

    /// The on-disk corpus index round-trips byte for byte, non-finite best
    /// values included: parse(serialize(entries)) re-serializes to the very
    /// same bytes, so rescans never churn the committed index file.
    #[test]
    fn corpus_index_roundtrips_bytes_exactly(
        k in 0usize..7,
        seed in 0u64..u64::MAX,
    ) {
        use baco::journal::corpus::{Corpus, CorpusEntry};
        // splitmix64: cheap deterministic field material from the one seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let entries: Vec<CorpusEntry> = (0..k)
            .map(|i| {
                let best = match next() % 5 {
                    0 => None,
                    1 => Some(f64::NAN),
                    2 => Some(f64::INFINITY),
                    3 => Some(f64::NEG_INFINITY),
                    _ => Some((next() % 1_000_000) as f64 / 997.0),
                };
                CorpusEntry {
                    session: format!("s{i}-{:x}", next() % 0xffff),
                    fingerprint: next(),
                    envelope: next(),
                    objectives: 1 + (next() % 3) as usize,
                    trials: (next() % 500) as usize,
                    best,
                    content: next(),
                }
            })
            .collect();
        let corpus = Corpus { dir: std::path::PathBuf::from("."), entries, skipped: Vec::new() };
        let bytes = corpus.index_to_bytes();
        let parsed = Corpus::index_from_bytes(&bytes).unwrap();
        let again = Corpus { entries: parsed, ..corpus }.index_to_bytes();
        prop_assert_eq!(bytes, again);
    }
}
