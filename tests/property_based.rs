//! Property-based integration tests: invariants that must hold for random
//! spaces, schedules and data, spanning the core library and the substrates.

use baco::cot::ChainOfTrees;
use baco::space::{perm, ParamValue, SearchSpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lehmer ranking is a bijection for every permutation length we allow.
    #[test]
    fn perm_rank_unrank_bijection(m in 1usize..8, r in 0u64..5040) {
        let r = r % perm::factorial(m);
        let p = perm::unrank(r, m);
        prop_assert!(perm::is_permutation(&p));
        prop_assert_eq!(perm::rank(&p), r);
    }

    /// Permutation semimetrics: symmetry, identity, normalized range.
    #[test]
    fn perm_semimetric_axioms(m in 2usize..7, ra in 0u64..720, rb in 0u64..720) {
        let a = perm::unrank(ra % perm::factorial(m), m);
        let b = perm::unrank(rb % perm::factorial(m), m);
        for metric in [perm::PermMetric::Spearman, perm::PermMetric::Kendall,
                       perm::PermMetric::Hamming, perm::PermMetric::Naive] {
            let dab = perm::distance(metric, &a, &b);
            let dba = perm::distance(metric, &b, &a);
            prop_assert!((dab - dba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&dab));
            prop_assert_eq!(perm::distance(metric, &a, &a), 0.0);
            if a != b {
                prop_assert!(dab > 0.0);
            }
        }
    }

    /// CoT enumeration equals brute-force constraint filtering on random
    /// two-parameter spaces with a random divisibility/ordering constraint.
    #[test]
    fn cot_equals_brute_force(
        hi_a in 1i64..12,
        hi_b in 1i64..12,
        kind in 0u8..3,
    ) {
        let constraint = match kind {
            0 => "a >= b",
            1 => "a % (b + 1) == 0",
            _ => "a + b <= 10",
        };
        let space = SearchSpace::builder()
            .integer("a", 0, hi_a)
            .integer("b", 0, hi_b)
            .known_constraint(constraint)
            .build()
            .unwrap();
        let brute: Vec<_> = (0..=hi_a)
            .flat_map(|a| (0..=hi_b).map(move |b| (a, b)))
            .filter(|(a, b)| match kind {
                0 => a >= b,
                1 => a % (b + 1) == 0,
                _ => a + b <= 10,
            })
            .collect();
        match ChainOfTrees::build(&space) {
            Ok(cot) => {
                prop_assert_eq!(cot.feasible_size() as usize, brute.len());
                for (a, b) in brute {
                    let cfg = space
                        .configuration(&[("a", ParamValue::Int(a)), ("b", ParamValue::Int(b))])
                        .unwrap();
                    prop_assert!(cot.contains(&cfg));
                }
            }
            Err(baco::Error::EmptyFeasibleSet) => prop_assert!(brute.is_empty()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// CoT sampling always returns configurations satisfying the known
    /// constraints, for both the unbiased and biased samplers.
    #[test]
    fn cot_samples_are_feasible(seed in 0u64..500) {
        let space = SearchSpace::builder()
            .ordinal_log("tile", vec![1.0, 2.0, 4.0, 8.0, 16.0])
            .integer("unroll", 1, 8)
            .permutation("ord", 3)
            .known_constraint("tile % unroll == 0")
            .known_constraint("pos(ord, 0) < pos(ord, 2)")
            .build()
            .unwrap();
        let cot = ChainOfTrees::build(&space).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = cot.sample_uniform(&mut rng);
        let b = cot.sample_biased(&mut rng);
        prop_assert!(space.satisfies_known(&u).unwrap());
        prop_assert!(space.satisfies_known(&b).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scheduled sparse kernels compute exactly what the reference computes,
    /// whatever the (feasible) schedule.
    #[test]
    fn scheduled_spmm_matches_reference(seed in 0u64..1000) {
        use taco_sim::generate::{matrix, spec};
        use taco_sim::kernels::{spmm, SpmmSchedule};
        use taco_sim::sparse::DenseMatrix;
        use rand::SeedableRng;

        let b = matrix(&spec("ACTIVSg10K"), 0.002);
        let c = DenseMatrix::random(b.ncols, 16, 1);
        let space = taco_sim::benchmarks::spmm_space();
        let cot = ChainOfTrees::build(&space).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = cot.sample_uniform(&mut rng);
        let sched = SpmmSchedule::from_config(&cfg);
        let (got, t) = spmm(&b, &c, &sched);
        prop_assert!(t > 0.0 && t.is_finite());
        let want = taco_sim::kernels::spmm::reference(&b, &c);
        for (x, y) in got.data.iter().zip(&want.data) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }

    /// GPU kernel models never return non-finite or non-positive times for
    /// feasible configurations, across the whole feasible set.
    #[test]
    fn gpu_models_return_sane_times(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for bench in gpu_sim::benchmarks::rise_benchmarks() {
            let cot = ChainOfTrees::build(&bench.space).unwrap();
            let cfg = cot.sample_uniform(&mut rng);
            let eval = bench.blackbox.evaluate(&cfg);
            if let Some(v) = eval.value() {
                prop_assert!(v.is_finite() && v > 0.0, "{}: {v}", bench.name);
            }
        }
    }
}
