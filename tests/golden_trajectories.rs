//! Golden-trajectory regression suite.
//!
//! The committed fixtures under `tests/fixtures/` are journals of seeded
//! runs on real benchmark substrates, generated with `baco-cli`:
//!
//! ```text
//! cargo run --release -p baco-bench --bin baco-cli -- tune \
//!     --bench "SpMM scircuit" --scale test \
//!     --journal tests/fixtures/spmm_scircuit_seed7.jsonl \
//!     --budget 20 --doe 6 --seed 7
//! cargo run --release -p baco-bench --bin baco-cli -- tune \
//!     --bench MM_GPU \
//!     --journal tests/fixtures/mm_gpu_seed3_q4.jsonl \
//!     --budget 20 --doe 6 --seed 3 --batch 4 --threads 1
//! ```
//!
//! Each test replays a fixture: the tuner re-runs from the same seed with
//! the black box *replaced* by the journal's recorded evaluations, and every
//! proposal must reproduce the fixture bit for bit. Objective values feed
//! the surrogate exactly as recorded, so the assertion isolates the tuner's
//! own determinism — any drift in the RNG stream, GP numerics, acquisition
//! or CoT sampling shows up as a diverging proposal. (The substrates
//! themselves measure wall time or inject run-to-run noise, so replaying
//! recorded values — not re-measuring — is what makes the golden comparison
//! well-defined.)
//!
//! If a PR *intentionally* changes the trajectory (new RNG consumption, new
//! acquisition math), regenerate the fixtures with the commands above and
//! call the change out in the PR description.

use baco::benchmark::Benchmark;
use baco::journal::{Journal, Mode};
use baco::tuner::{Baco, BlackBox, Evaluation, MultiObjectiveStrategy};
use baco::{Configuration, TuningReport};
use std::collections::HashMap;
use std::path::Path;

/// Serves the fixture's recorded evaluations (scalar or objective-vector);
/// panics on any configuration the fixture never saw (= the trajectory
/// already diverged).
struct ReplayBox {
    name: &'static str,
    recorded: HashMap<Configuration, (Option<Vec<f64>>, bool)>,
}

impl BlackBox for ReplayBox {
    fn evaluate(&self, cfg: &Configuration) -> Evaluation {
        let Some((values, feasible)) = self.recorded.get(cfg) else {
            panic!(
                "golden trajectory diverged: {} proposed {cfg}, which the fixture never \
                 evaluated. If the change is intentional, regenerate the fixture (see \
                 tests/golden_trajectories.rs docs).",
                self.name
            );
        };
        match (feasible, values) {
            (true, Some(v)) => Evaluation::feasible_multi(v.clone()),
            _ => Evaluation::infeasible(),
        }
    }
}

/// Bitwise trial signature: configuration, full objective-vector bits,
/// feasibility.
fn signature(r: &TuningReport) -> Vec<(String, Option<Vec<u64>>, bool)> {
    r.trials()
        .iter()
        .map(|t| {
            (
                t.config.to_string(),
                t.objectives().map(|o| o.iter().map(|v| v.to_bits()).collect()),
                t.feasible,
            )
        })
        .collect()
}

struct Golden {
    fixture: &'static str,
    bench: Benchmark,
    seed: u64,
    batch: usize,
}

impl Golden {
    fn load(&self) -> (Journal, Baco, ReplayBox) {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(self.fixture);
        let journal = Journal::load(&path, &self.bench.space)
            .unwrap_or_else(|e| panic!("{}: {e}", self.fixture));
        let mut builder = Baco::builder(self.bench.space.clone())
            .budget(20)
            .doe_samples(6)
            .seed(self.seed)
            .batch_size(self.batch)
            .objectives(self.bench.n_objectives())
            // Every committed fixture predates the EHVI default: their
            // envelopes carry no `mo_strategy`, which means ParEGO. Pinning
            // it keeps them validating and replaying forever (it is inert
            // for the single-objective fixtures).
            .mo_strategy(MultiObjectiveStrategy::ParEgo)
            .eval_threads(1);
        if let Some(r) = self.bench.reference_point.clone() {
            builder = builder.reference_point(r);
        }
        let tuner = builder.build().unwrap();
        // The fixture must have been generated under exactly the options the
        // test reconstructs — `validate` cross-checks the envelope.
        let mode = if self.batch > 1 { Mode::Batched } else { Mode::Run };
        journal
            .header
            .validate(mode, tuner.options(), &self.bench.space)
            .unwrap_or_else(|e| panic!("{}: fixture/test option drift: {e}", self.fixture));
        let recorded = journal
            .trials
            .iter()
            .map(|t| (t.config.clone(), (t.to_trial().objectives(), t.feasible)))
            .collect();
        let replay = ReplayBox {
            name: self.fixture,
            recorded,
        };
        (journal, tuner, replay)
    }

    fn fixture_signature(&self, journal: &Journal) -> Vec<(String, Option<Vec<u64>>, bool)> {
        journal
            .trials
            .iter()
            .map(|t| {
                (
                    t.config.to_string(),
                    t.to_trial()
                        .objectives()
                        .map(|o| o.iter().map(|v| v.to_bits()).collect()),
                    t.feasible,
                )
            })
            .collect()
    }

    /// Recompute-from-scratch replay: every proposal and every fold-in must
    /// reproduce the fixture bitwise.
    fn assert_replay(&self) {
        let (journal, tuner, replay) = self.load();
        assert_eq!(journal.trials.len(), 20, "{}: fixture incomplete", self.fixture);
        let report = if self.batch > 1 {
            tuner.run_batched(&replay).unwrap()
        } else {
            tuner.run(&replay).unwrap()
        };
        assert_eq!(
            self.fixture_signature(&journal),
            signature(&report),
            "{}: recomputed trajectory drifted from the committed fixture",
            self.fixture
        );
    }

    /// Transfer pointed at an **empty** corpus must be trajectory-inert:
    /// the same replay, with `transfer` enabled on a directory holding no
    /// usable donors, reproduces the committed fixture bitwise. (The prior
    /// RNG is private to the transfer module and DoE re-ranking is the
    /// identity without donors, so fleet plumbing alone may not move a
    /// single proposal.)
    fn assert_empty_corpus_replay(&self) {
        let (journal, _, replay) = self.load();
        let stem = Path::new(self.fixture)
            .file_stem()
            .expect("fixture has a file name")
            .to_string_lossy();
        let dir =
            std::env::temp_dir().join(format!("baco-golden-empty-{}-{stem}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut builder = Baco::builder(self.bench.space.clone())
            .budget(20)
            .doe_samples(6)
            .seed(self.seed)
            .batch_size(self.batch)
            .objectives(self.bench.n_objectives())
            .mo_strategy(MultiObjectiveStrategy::ParEgo)
            .eval_threads(1)
            .transfer(&dir);
        if let Some(r) = self.bench.reference_point.clone() {
            builder = builder.reference_point(r);
        }
        let tuner = builder.build().unwrap();
        let report = if self.batch > 1 {
            tuner.run_batched(&replay).unwrap()
        } else {
            tuner.run(&replay).unwrap()
        };
        assert_eq!(
            self.fixture_signature(&journal),
            signature(&report),
            "{}: an empty transfer corpus perturbed the trajectory",
            self.fixture
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash-and-resume replay: truncate the fixture at several interior
    /// record boundaries, resume each, and require the fixture trajectory.
    fn assert_resume(&self) {
        let (journal, _, replay) = self.load();
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(self.fixture);
        let bytes = std::fs::read(&path).unwrap();
        let boundaries: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == b'\n').then_some(i + 1))
            .collect();
        // Per-fixture dir: the two *_resumes_bitwise tests run concurrently
        // in one process, so a shared dir would race with the cleanup below.
        let stem = Path::new(self.fixture)
            .file_stem()
            .expect("fixture has a file name")
            .to_string_lossy();
        let dir =
            std::env::temp_dir().join(format!("baco-golden-{}-{stem}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let crash = dir.join("crash.jsonl");
        // Every 3rd boundary keeps runtime modest while still covering
        // mid-DoE, mid-round and late interruption points.
        for &cut in boundaries.iter().step_by(3) {
            std::fs::write(&crash, &bytes[..cut]).unwrap();
            let mut builder = Baco::builder(self.bench.space.clone())
                .budget(20)
                .doe_samples(6)
                .seed(self.seed)
                .batch_size(self.batch)
                .objectives(self.bench.n_objectives())
                .mo_strategy(MultiObjectiveStrategy::ParEgo)
                .eval_threads(1)
                .journal_path(&crash);
            if let Some(r) = self.bench.reference_point.clone() {
                builder = builder.reference_point(r);
            }
            let tuner = builder.build().unwrap();
            let report = if self.batch > 1 {
                tuner.resume_batched(&replay).unwrap()
            } else {
                tuner.resume(&replay).unwrap()
            };
            assert_eq!(
                self.fixture_signature(&journal),
                signature(&report),
                "{}: resume at byte {cut} drifted from the fixture",
                self.fixture
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn spmm() -> Golden {
    Golden {
        fixture: "tests/fixtures/spmm_scircuit_seed7.jsonl",
        bench: taco_sim::benchmarks::spmm_benchmark(
            "scircuit",
            taco_sim::benchmarks::TacoScale::Test,
        ),
        seed: 7,
        batch: 1,
    }
}

fn mm_gpu() -> Golden {
    Golden {
        fixture: "tests/fixtures/mm_gpu_seed3_q4.jsonl",
        bench: gpu_sim::benchmarks::mm_gpu(),
        seed: 3,
        batch: 4,
    }
}

fn bfs_pareto() -> Golden {
    Golden {
        fixture: "tests/fixtures/bfs_pareto_seed7.jsonl",
        bench: fpga_sim::benchmarks::bfs_pareto(),
        seed: 7,
        batch: 1,
    }
}

#[test]
fn taco_spmm_golden_trajectory_replays_bitwise() {
    spmm().assert_replay();
}

#[test]
fn gpu_mm_batched_golden_trajectory_replays_bitwise() {
    mm_gpu().assert_replay();
}

#[test]
fn taco_spmm_golden_trajectory_resumes_bitwise() {
    spmm().assert_resume();
}

#[test]
fn gpu_mm_batched_golden_trajectory_resumes_bitwise() {
    mm_gpu().assert_resume();
}

/// The multi-objective golden: a format-v2 journal whose trial records carry
/// `[runtime_ms, area_kalms]` vectors, replayed bitwise — pins the ParEGO
/// weight draws, the per-objective GP numerics and the v2 codec at once.
#[test]
fn fpga_bfs_pareto_golden_trajectory_replays_bitwise() {
    bfs_pareto().assert_replay();
}

#[test]
fn fpga_bfs_pareto_golden_trajectory_resumes_bitwise() {
    bfs_pareto().assert_resume();
}

#[test]
fn empty_corpus_transfer_replays_every_golden_bitwise() {
    spmm().assert_empty_corpus_replay();
    mm_gpu().assert_empty_corpus_replay();
    bfs_pareto().assert_empty_corpus_replay();
}
